//! Renderers over telemetry artifacts: the `qufi stats <run-dir>` phase
//! breakdown and the per-job progress listing behind `qufi list runs`.
//!
//! Everything here reads files a finished (or interrupted) run left
//! behind — `metrics.json`, `costs.csv`, `trace.jsonl`, checkpoints —
//! and never executes a circuit, so both commands are instant even for
//! campaigns that took hours.

use crate::checkpoint::CheckpointStore;
use crate::error::CliError;
use crate::obs_artifacts::{load_costs, load_metrics, load_trace};
use crate::{job_matrix, load_stored_manifest, STORED_MANIFEST};
use qufi_obs::{CostRecord, Snapshot};
use std::fmt::Write as _;
use std::path::Path;

/// Nanoseconds as a human-readable duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The top-level campaign phases, in execution order. Their spans are
/// siblings under `campaign.total_ns`, so their sums partition the run.
const TOP_PHASES: [(&str, &str); 3] = [
    ("campaign.prepare_ns", "prepare (jobs + checkpoints)"),
    ("campaign.execute_ns", "replay (worker pool)"),
    ("export.write_ns", "export (results/)"),
];

/// Renders the `qufi stats` report for one run directory.
///
/// # Errors
///
/// A directory without a `metrics.json`, or malformed artifacts.
pub fn render_stats(run_dir: &Path, top_k: usize) -> Result<String, CliError> {
    let snap = load_metrics(run_dir)?.ok_or_else(|| {
        CliError::manifest(format!(
            "{} has no metrics.json; re-run the campaign without --no-metrics",
            run_dir.display()
        ))
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry for {} (latest invocation)",
        run_dir.display()
    );

    render_phase_breakdown(&mut out, &snap);
    render_point_phases(&mut out, &snap);
    render_counters(&mut out, &snap);
    if let Some(costs) = load_costs(run_dir)? {
        render_slowest_points(&mut out, costs, top_k);
    }
    if let Some(events) = load_trace(run_dir)? {
        match qufi_obs::trace::validate_nesting(&events) {
            Ok(()) => {
                let _ = writeln!(out, "\ntrace: {} spans, nesting OK", events.len());
            }
            Err(e) => {
                let _ = writeln!(out, "\ntrace: {} spans, NESTING BROKEN: {e}", events.len());
            }
        }
    }
    Ok(out)
}

fn render_phase_breakdown(out: &mut String, snap: &Snapshot) {
    let total = snap.hists.get("campaign.total_ns").map(|h| h.sum);
    let _ = writeln!(out, "\nphase breakdown (wall-clock):");
    if let Some(total) = total {
        let _ = writeln!(
            out,
            "  {:<32} {:>12}  {:>6}",
            "campaign total",
            fmt_ns(total),
            "100.0%"
        );
    }
    for (name, label) in TOP_PHASES {
        let Some(h) = snap.hists.get(name) else {
            continue;
        };
        match total {
            Some(total) if total > 0 => {
                let pct = 100.0 * h.sum as f64 / total as f64;
                let _ = writeln!(out, "    {:<30} {:>12}  {pct:>5.1}%", label, fmt_ns(h.sum));
            }
            _ => {
                let _ = writeln!(out, "    {:<30} {:>12}", label, fmt_ns(h.sum));
            }
        }
    }
}

fn render_point_phases(out: &mut String, snap: &Snapshot) {
    // Everything that isn't a top-level phase is a per-point / per-plan
    // histogram: show the distribution shape, not just the sum.
    let detail: Vec<_> = snap
        .hists
        .iter()
        .filter(|(name, _)| {
            name.as_str() != "campaign.total_ns" && !TOP_PHASES.iter().any(|(top, _)| top == name)
        })
        .collect();
    if detail.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nspan histograms:");
    let _ = writeln!(
        out,
        "  {:<26} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "span", "count", "total", "mean", "min", "max"
    );
    for (name, h) in detail {
        let _ = writeln!(
            out,
            "  {:<26} {:>7} {:>12} {:>12} {:>12} {:>12}",
            name,
            h.count,
            fmt_ns(h.sum),
            fmt_ns(h.mean() as u64),
            fmt_ns(if h.count == 0 { 0 } else { h.min }),
            fmt_ns(h.max)
        );
    }
}

fn render_counters(out: &mut String, snap: &Snapshot) {
    if snap.counters.is_empty() {
        return;
    }
    let _ = writeln!(out, "\ncounters:");
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "  {name:<30} {value:>12}");
    }
    if let (Some(&cells), Some(&blocks)) = (
        snap.counters.get("replay.batch.cells"),
        snap.counters.get("replay.batch.blocks"),
    ) {
        if blocks > 0 {
            let _ = writeln!(
                out,
                "  note: batched replay occupancy {:.1} cells/block over {blocks} block(s)",
                cells as f64 / blocks as f64
            );
        }
    }
    if let Some(&salvaged) = snap.counters.get("checkpoint.salvaged_lines") {
        if salvaged > 0 {
            let _ = writeln!(
                out,
                "  note: {salvaged} torn checkpoint line(s) were salvaged during this run"
            );
        }
    }
}

fn render_slowest_points(out: &mut String, mut costs: Vec<CostRecord>, top_k: usize) {
    if costs.is_empty() {
        return;
    }
    let shown = top_k.min(costs.len());
    let _ = writeln!(
        out,
        "\ntop {shown} slowest points (of {}, by prepare + replay):",
        costs.len()
    );
    costs.sort_by_key(|c| std::cmp::Reverse(c.prepare_ns.saturating_add(c.replay_ns)));
    for c in costs.iter().take(shown) {
        let total = c.prepare_ns.saturating_add(c.replay_ns);
        let _ = writeln!(
            out,
            "  {:<16} op {:>3} qubit {:>2}  {:>12}  (prepare {}, replay {}, {} cells)",
            if c.job.is_empty() {
                "(unlabeled)"
            } else {
                &c.job
            },
            c.op_index,
            c.qubit,
            fmt_ns(total),
            fmt_ns(c.prepare_ns),
            fmt_ns(c.replay_ns),
            c.cells
        );
    }
}

/// Renders per-job progress for every campaign directory under `dir`
/// (the `qufi list runs [DIR]` report). A directory counts as a run when
/// it holds a stored `manifest.toml`; `dir` itself may be a single run.
///
/// # Errors
///
/// An unreadable `dir`. Individual broken runs render as one error line
/// each instead of failing the listing.
pub fn render_runs(dir: &Path) -> Result<String, CliError> {
    // A `qufi serve` state directory renders as a job-queue report:
    // every submitted job with its queue state, plus per-job checkpoint
    // progress for the campaigns that have started.
    if let Some(report) = render_serve_dir(dir)? {
        return Ok(report);
    }
    let mut run_dirs = Vec::new();
    if dir.join(STORED_MANIFEST).is_file() {
        run_dirs.push(dir.to_path_buf());
    } else {
        let entries =
            std::fs::read_dir(dir).map_err(|e| CliError::io("listing run directories", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CliError::io("listing run directories", dir, e))?;
            let path = entry.path();
            if path.join(STORED_MANIFEST).is_file() {
                run_dirs.push(path);
            }
        }
        run_dirs.sort();
    }
    if run_dirs.is_empty() {
        return Ok(format!(
            "no campaign directories under {} (a run holds a {STORED_MANIFEST})\n",
            dir.display()
        ));
    }
    let mut out = String::new();
    for run_dir in run_dirs {
        match render_one_run(&run_dir) {
            Ok(report) => out.push_str(&report),
            Err(e) => {
                let _ = writeln!(out, "{}: {e}", run_dir.display());
            }
        }
    }
    Ok(out)
}

/// Renders a `qufi serve` state directory: one line per submitted job
/// with its queue state (queued/running/done/canceled/failed/poisoned),
/// checkpoint progress of its campaign directory, and the last error
/// for jobs accumulating strikes. Returns `None` when `dir` is not a
/// service directory (no `jobs/` record store).
fn render_serve_dir(dir: &Path) -> Result<Option<String>, CliError> {
    if !dir.join("jobs").is_dir() {
        return Ok(None);
    }
    let store = qufi_serve::store::Store::open(dir)
        .map_err(|e| CliError::io("opening service job store", dir, e))?;
    let (records, skipped) = store
        .load_all()
        .map_err(|e| CliError::io("listing service jobs", dir, e))?;
    if records.is_empty() && skipped == 0 && !dir.join("serve.addr").is_file() {
        // A stray `jobs/` subdirectory with no records and no published
        // address is not a service directory; fall through to the
        // ordinary campaign listing.
        return Ok(None);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service directory {} ({} job(s))",
        dir.display(),
        records.len()
    );
    let name_width = records.iter().map(|r| r.name.len()).max().unwrap_or(0);
    for r in &records {
        let progress = match campaign_points(&store.job_dir(&r.id)) {
            Some((done, total)) => format!("{done:>4}/{total:<4} points"),
            None => format!("{:>4}/{:<4} points", "-", "-"),
        };
        let mut notes = String::new();
        if r.fails > 0 {
            let _ = write!(notes, "  {} strike(s)", r.fails);
        }
        if let Some(err) = &r.error {
            let first_line = err.lines().next().unwrap_or("");
            let _ = write!(notes, "  last error: {first_line}");
        }
        let _ = writeln!(
            out,
            "  [{:<8}] {}  {:<name_width$}  {progress}{notes}",
            r.state.as_str(),
            r.id,
            r.name
        );
    }
    if skipped > 0 {
        let _ = writeln!(out, "  note: {skipped} unreadable job record(s) skipped");
    }
    Ok(Some(out))
}

/// Checkpoint progress of one service job's campaign directory:
/// `(complete, total)` points summed over its job matrix. `None` when
/// the campaign has not started yet (no stored manifest) or its
/// artifacts are unreadable — the listing shows `-/-` rather than
/// failing the whole report.
fn campaign_points(run_dir: &Path) -> Option<(usize, usize)> {
    if !run_dir.join(STORED_MANIFEST).is_file() {
        return None;
    }
    let manifest = load_stored_manifest(run_dir).ok()?;
    let grid = manifest.grid.to_grid().ok()?;
    let store = CheckpointStore::open(run_dir).ok()?;
    let mut done = 0usize;
    let mut total = 0usize;
    for spec in job_matrix(&manifest) {
        let id = spec.id();
        if let Ok(Some(meta)) = store.load_meta(&id) {
            total += meta.points_total;
            if let Ok(records) = store.load_records(&id) {
                done += crate::runner::complete_points(&records, &grid).len();
            }
        }
    }
    Some((done, total))
}

fn render_one_run(run_dir: &Path) -> Result<String, CliError> {
    let manifest = load_stored_manifest(run_dir)?;
    let grid = manifest.grid.to_grid()?;
    let store = CheckpointStore::open(run_dir)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({}, {} executor)",
        run_dir.display(),
        manifest.name,
        manifest.executor.keyword()
    );
    let specs = job_matrix(&manifest);
    let id_width = specs.iter().map(|s| s.id().len()).max().unwrap_or(0);
    let mut all_done = true;
    for spec in &specs {
        let id = spec.id();
        let (done, total) = match store.load_meta(&id)? {
            Some(meta) => {
                let records = store.load_records(&id)?;
                (
                    crate::runner::complete_points(&records, &grid).len(),
                    meta.points_total,
                )
            }
            None => (0, 0),
        };
        let state = if total == 0 {
            "not started"
        } else if done >= total {
            "complete"
        } else {
            all_done = false;
            "in progress"
        };
        let _ = writeln!(
            out,
            "  {id:<id_width$}  {done:>4}/{total:<4} points  {state}"
        );
    }
    if let Some(snap) = load_metrics(run_dir)? {
        let mut notes = Vec::new();
        if let Some(h) = snap.hists.get("campaign.total_ns") {
            notes.push(format!("last invocation {}", fmt_ns(h.sum)));
        }
        if let Some(&n) = snap.counters.get("campaign.points_run") {
            notes.push(format!("{n} points run"));
        }
        if let Some(&s) = snap.counters.get("checkpoint.salvaged_lines") {
            if s > 0 {
                notes.push(format!("{s} salvaged checkpoint line(s)"));
            }
        }
        if !notes.is_empty() {
            let _ = writeln!(out, "  metrics: {}", notes.join(", "));
        }
    } else if !all_done {
        let _ = writeln!(
            out,
            "  (no metrics.json; resume with `qufi resume` to finish)"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(0), "0 ns");
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21 s");
    }

    #[test]
    fn missing_metrics_is_a_clear_error() {
        let dir = std::env::temp_dir().join(format!("qufi-stats-none-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let err = render_stats(&dir, 5).unwrap_err().to_string();
        assert!(err.contains("no metrics.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_dir_lists_job_states_and_progress() {
        use qufi_serve::store::Store;
        use qufi_serve::{JobRecord, JobState};

        let dir = std::env::temp_dir().join(format!("qufi-list-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = Store::open(&dir).unwrap();

        // One finished job with a real campaign directory behind it...
        let toml = "[campaign]\n\
                    name = \"svc\"\n\
                    executor = \"ideal\"\n\
                    workloads = [\"ghz-2\"]\n\
                    [grid]\n\
                    thetas = [0.0]\n\
                    phis = [0.0]\n";
        let manifest = crate::Manifest::from_toml(toml).unwrap();
        let canonical = manifest.to_toml();
        let id = qufi_serve::job_id(&canonical);
        crate::run_to_completion(
            &manifest,
            &store.job_dir(&id),
            &crate::RunOptions {
                quiet: true,
                ..crate::RunOptions::default()
            },
        )
        .unwrap();
        store
            .save(&JobRecord {
                id,
                name: "svc".to_string(),
                state: JobState::Done,
                manifest: canonical,
                fails: 0,
                error: None,
                seq: 1,
            })
            .unwrap();
        // ...and one still queued, with no campaign directory yet.
        store
            .save(&JobRecord {
                id: "jdeadbeefdeadbeef".to_string(),
                name: "pending".to_string(),
                state: JobState::Queued,
                manifest: String::new(),
                fails: 2,
                error: Some("transient\nsecond line".to_string()),
                seq: 2,
            })
            .unwrap();

        let report = render_runs(&dir).unwrap();
        assert!(report.contains("service directory"), "{report}");
        assert!(report.contains("[done    ]"), "{report}");
        assert!(report.contains("[queued  ]"), "{report}");
        // The finished job shows real checkpoint progress; the queued
        // one shows a placeholder, its strikes, and only the first
        // error line.
        let done_line = report.lines().find(|l| l.contains("svc")).unwrap();
        assert!(!done_line.contains("-/-"), "{report}");
        let queued_line = report.lines().find(|l| l.contains("pending")).unwrap();
        assert!(queued_line.contains("-/-"), "{report}");
        assert!(queued_line.contains("2 strike(s)"), "{report}");
        assert!(queued_line.contains("last error: transient"), "{report}");
        assert!(!queued_line.contains("second line"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_listing_says_so() {
        let dir = std::env::temp_dir().join(format!("qufi-list-none-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let report = render_runs(&dir).unwrap();
        assert!(report.contains("no campaign directories"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
