//! Artifact export: turns checkpointed campaign state into the
//! machine-readable results tree.
//!
//! ```text
//! <out>/results/
//!   summary.json            campaign-level rollup
//!   summary.csv             one row per job
//!   <job_id>/
//!     records.csv           canonical (sorted, deduplicated) records
//!     records.json          full campaign document (qufi_core::serialize)
//!     heatmap.csv|.json     mean-QVF (φ, θ) lattice (paper Fig. 5)
//!     qubit_ranking.csv|.json  per-qubit vulnerability (paper Fig. 6/§I)
//! ```
//!
//! Everything derives from the checkpoint files, never from in-memory
//! campaign state — so an interrupted-and-resumed campaign exports
//! byte-identical artifacts to an uninterrupted one, and `qufi export`
//! can regenerate results offline at any time.

use crate::checkpoint::{CheckpointStore, JobMeta};
use crate::error::CliError;
use crate::job::job_matrix;
use crate::manifest::Manifest;
use qufi_core::mapping::qubit_reliability;
use qufi_core::report::{records_to_csv, Heatmap};
use qufi_core::serialize::{campaign_to_json, heatmap_to_json, json};
use qufi_core::CampaignResult;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// What an export pass produced.
#[derive(Debug, Clone)]
pub struct ExportReport {
    /// Files written, in write order.
    pub files: Vec<PathBuf>,
    /// Jobs with full record coverage.
    pub jobs_complete: usize,
    /// Jobs exported from partial checkpoints (flagged in the summary).
    pub jobs_partial: usize,
    /// The human-facing completion table, rendered from the same loaded
    /// state (so callers need not re-read the checkpoints to print it).
    pub summary_table: String,
}

struct JobExport {
    meta: JobMeta,
    result: CampaignResult,
    points_done: usize,
}

impl JobExport {
    fn is_complete(&self) -> bool {
        self.points_done >= self.meta.points_total
    }
}

/// Exports the full results tree for `manifest`'s campaign from the
/// checkpoints under `out_dir`.
///
/// # Errors
///
/// Missing/corrupt checkpoints and filesystem failures.
pub fn export_artifacts(manifest: &Manifest, out_dir: &Path) -> Result<ExportReport, CliError> {
    let _export_span = qufi_obs::span("export.write_ns");
    let store = CheckpointStore::open(out_dir)?;
    let grid = manifest.grid.to_grid()?;
    let results_dir = out_dir.join("results");
    fs::create_dir_all(&results_dir)
        .map_err(|e| CliError::io("creating results directory", &results_dir, e))?;

    let mut jobs = Vec::new();
    for spec in job_matrix(manifest) {
        let id = spec.id();
        let meta = store.load_meta(&id)?.ok_or_else(|| {
            CliError::checkpoint(format!(
                "job {id} has no checkpoint; run the campaign first"
            ))
        })?;
        let records = store.load_records(&id)?;
        // Canonicalize through merge_records: deduplicate replayed
        // shards and restore (point, φ, θ) order.
        let mut result = CampaignResult::from_parts(
            meta.circuit.clone(),
            meta.golden.clone(),
            meta.baseline_qvf,
            grid.clone(),
            Vec::new(),
        );
        result.merge_records(records);
        let points_done = result.len() / grid.len().max(1);
        jobs.push(JobExport {
            meta,
            result,
            points_done,
        });
    }

    let mut files = Vec::new();
    for job in &jobs {
        let dir = results_dir.join(&job.meta.id);
        fs::create_dir_all(&dir).map_err(|e| CliError::io("creating job directory", &dir, e))?;
        write(
            &mut files,
            dir.join("records.csv"),
            records_to_csv(&job.result.records),
        )?;
        write(
            &mut files,
            dir.join("records.json"),
            campaign_to_json(&job.result),
        )?;
        let heatmap = Heatmap::from_campaign(&job.result);
        write(&mut files, dir.join("heatmap.csv"), heatmap.to_csv())?;
        write(
            &mut files,
            dir.join("heatmap.json"),
            heatmap_to_json(&heatmap),
        )?;
        write(
            &mut files,
            dir.join("qubit_ranking.csv"),
            ranking_csv(&job.result),
        )?;
        write(
            &mut files,
            dir.join("qubit_ranking.json"),
            ranking_json(&job.result),
        )?;
    }
    write(
        &mut files,
        results_dir.join("summary.csv"),
        summary_csv(manifest, &jobs),
    )?;
    write(
        &mut files,
        results_dir.join("summary.json"),
        summary_json(manifest, &jobs),
    )?;

    let jobs_complete = jobs.iter().filter(|j| j.is_complete()).count();
    Ok(ExportReport {
        files,
        jobs_complete,
        jobs_partial: jobs.len() - jobs_complete,
        summary_table: render_summary_table(&jobs),
    })
}

fn write(files: &mut Vec<PathBuf>, path: PathBuf, contents: String) -> Result<(), CliError> {
    crate::chaos::kill_point("export.write");
    qufi_obs::add("export.files", 1);
    qufi_obs::add("export.bytes", contents.len() as u64);
    // Atomic per artifact: a crash mid-export leaves each file either
    // old or new, never torn — and a re-export repairs the tree, since
    // everything derives from checkpoints.
    crate::atomic_write(&path, contents.as_bytes(), "writing artifact")?;
    files.push(path);
    Ok(())
}

fn ranking_csv(result: &CampaignResult) -> String {
    let mut out = String::from("qubit,mean_qvf,sdc_fraction,samples\n");
    for r in qubit_reliability(result) {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{}",
            r.qubit, r.mean_qvf, r.sdc_fraction, r.samples
        );
    }
    out
}

fn ranking_json(result: &CampaignResult) -> String {
    json::array(qubit_reliability(result).into_iter().map(|r| {
        format!(
            "{{\"qubit\":{},\"mean_qvf\":{},\"sdc_fraction\":{},\"samples\":{}}}",
            r.qubit,
            json::num(r.mean_qvf),
            json::num(r.sdc_fraction),
            r.samples
        )
    }))
}

fn summary_csv(manifest: &Manifest, jobs: &[JobExport]) -> String {
    let mut out = String::from(
        "job,workload,backend,scale,executor,points_done,points_total,records,\
         baseline_qvf,mean_qvf,stddev_qvf,masked,dubious,sdc,improved_fraction,complete\n",
    );
    for job in jobs {
        let (masked, dubious, sdc) = job.result.severity_counts();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{masked},{dubious},{sdc},{:.6},{}",
            job.meta.id,
            job.meta.workload,
            job.meta.backend,
            job.meta.scale,
            manifest.executor.keyword(),
            job.points_done,
            job.meta.points_total,
            job.result.len(),
            job.meta.baseline_qvf,
            job.result.mean_qvf(),
            job.result.stddev_qvf(),
            job.result.improved_fraction(),
            job.is_complete(),
        );
    }
    out
}

fn summary_json(manifest: &Manifest, jobs: &[JobExport]) -> String {
    let rendered = jobs.iter().map(|job| {
        let (masked, dubious, sdc) = job.result.severity_counts();
        format!(
            "{{\"job\":{},\"workload\":{},\"backend\":{},\"scale\":{},\
             \"points_done\":{},\"points_total\":{},\"records\":{},\
             \"baseline_qvf\":{},\"mean_qvf\":{},\"stddev_qvf\":{},\
             \"severity\":{{\"masked\":{masked},\"dubious\":{dubious},\"sdc\":{sdc}}},\
             \"improved_fraction\":{},\"complete\":{}}}",
            json::string(&job.meta.id),
            json::string(&job.meta.workload),
            json::string(&job.meta.backend),
            json::num(job.meta.scale),
            job.points_done,
            job.meta.points_total,
            job.result.len(),
            json::num(job.meta.baseline_qvf),
            json::num(job.result.mean_qvf()),
            json::num(job.result.stddev_qvf()),
            json::num(job.result.improved_fraction()),
            job.is_complete(),
        )
    });
    format!(
        "{{\"campaign\":{},\"executor\":{},\"seed\":{},\"grid_size\":{},\"jobs\":{}}}",
        json::string(&manifest.name),
        json::string(manifest.executor.keyword()),
        manifest.seed,
        manifest.grid.to_grid().map(|g| g.len()).unwrap_or_default(),
        json::array(rendered),
    )
}

/// Renders the human-facing completion table printed after `qufi run`.
fn render_summary_table(jobs: &[JobExport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "job", "records", "baseline", "mean_qvf", "masked", "dubious", "sdc"
    );
    for job in jobs {
        let (masked, dubious, sdc) = job.result.severity_counts();
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>9.4} {:>9.4} {:>8} {:>8} {:>8}{}",
            job.meta.id,
            job.result.len(),
            job.meta.baseline_qvf,
            job.result.mean_qvf(),
            masked,
            dubious,
            sdc,
            if job.is_complete() { "" } else { "  (partial)" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunOptions};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qufi-export-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_manifest() -> Manifest {
        Manifest::from_toml(
            "[campaign]\nname = \"t\"\nthreads = 2\nexecutor = \"noisy\"\n\
             workloads = [\"bv-3\"]\nbackends = [\"lima\"]\n\
             [grid]\nthetas = [0.0, 3.141592653589793]\nphis = [0.0]\n",
        )
        .unwrap()
    }

    #[test]
    fn full_results_tree_is_written() {
        let dir = temp_dir("tree");
        let m = small_manifest();
        run_campaign(
            &m,
            &dir,
            &RunOptions {
                quiet: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let report = export_artifacts(&m, &dir).unwrap();
        assert_eq!(report.jobs_complete, 1);
        assert_eq!(report.jobs_partial, 0);
        for name in [
            "results/bv-3@lima/records.csv",
            "results/bv-3@lima/records.json",
            "results/bv-3@lima/heatmap.csv",
            "results/bv-3@lima/heatmap.json",
            "results/bv-3@lima/qubit_ranking.csv",
            "results/bv-3@lima/qubit_ranking.json",
            "results/summary.csv",
            "results/summary.json",
        ] {
            assert!(dir.join(name).is_file(), "missing {name}");
        }
        let summary = fs::read_to_string(dir.join("results/summary.json")).unwrap();
        assert!(summary.contains("\"complete\":true"));
        assert!(summary.contains("\"campaign\":\"t\""));
        assert!(report.summary_table.contains("bv-3@lima"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn export_without_checkpoints_is_an_error() {
        let dir = temp_dir("empty");
        let err = export_artifacts(&small_manifest(), &dir).unwrap_err();
        assert!(err.to_string().contains("no checkpoint"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn partial_campaigns_export_with_flag() {
        let dir = temp_dir("partial");
        let m = small_manifest();
        run_campaign(
            &m,
            &dir,
            &RunOptions {
                quiet: true,
                point_budget: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let report = export_artifacts(&m, &dir).unwrap();
        assert_eq!(report.jobs_partial, 1);
        let summary = fs::read_to_string(dir.join("results/summary.json")).unwrap();
        assert!(summary.contains("\"complete\":false"));
        let _ = fs::remove_dir_all(dir);
    }
}
