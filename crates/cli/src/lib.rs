//! Campaign orchestration for the QuFI stack: run manifests,
//! checkpointed parallel execution, and artifact export — the library
//! behind the `qufi` binary.
//!
//! The pipeline is deliberately file-shaped so every stage can be
//! re-entered offline:
//!
//! 1. [`manifest`] parses a TOML run manifest into a validated
//!    [`Manifest`].
//! 2. [`job`] expands it into the (workload × backend × noise-scale)
//!    job matrix.
//! 3. [`runner`] schedules every injection point of every job across a
//!    thread pool, checkpointing each completed point via
//!    [`checkpoint`]. Interrupt at any moment; re-running is a resume.
//! 4. [`export`] turns the checkpoint files into JSON/CSV artifacts.
//!    Because artifacts always derive from checkpoints, an
//!    interrupted-and-resumed campaign exports byte-identical results
//!    to an uninterrupted one.
//!
//! # Example
//!
//! ```
//! use qufi_cli::{run_to_completion, Manifest, RunOptions, RunStatus};
//!
//! let manifest = Manifest::from_toml(
//!     "[campaign]\n\
//!      name = \"doc\"\n\
//!      executor = \"ideal\"\n\
//!      workloads = [\"ghz-2\"]\n\
//!      [grid]\n\
//!      thetas = [0.0, 3.141592653589793]\n\
//!      phis = [0.0]\n",
//! ).unwrap();
//! let out = std::env::temp_dir().join("qufi-doc-example");
//! let _ = std::fs::remove_dir_all(&out);
//! let outcome = run_to_completion(&manifest, &out, &RunOptions {
//!     quiet: true,
//!     ..RunOptions::default()
//! }).unwrap();
//! assert_eq!(outcome.summary.status, RunStatus::Complete);
//! assert!(out.join("results/summary.json").is_file());
//! std::fs::remove_dir_all(&out).unwrap();
//! ```

pub mod chaos;
pub mod checkpoint;
pub mod error;
pub mod export;
pub mod job;
pub mod lease;
pub mod manifest;
pub mod obs_artifacts;
pub mod runner;
pub mod serve_cmd;
pub mod shard;
pub mod stats;
pub mod toml;

pub use error::{CliError, ManifestErrorKind, ManifestIssue};
pub use export::{export_artifacts, ExportReport};
pub use job::{job_matrix, JobSpec};
pub use manifest::{ExecutorKind, GridSpec, Manifest};
pub use runner::{dry_run_plan, run_campaign, JobOutcome, RunOptions, RunStatus, RunSummary};
pub use serve_cmd::{serve, CampaignHandler, ServeOptions};
pub use shard::{merge_campaign, plan_campaign, work_campaign, MergeReport, WorkOptions};
pub use stats::{render_runs, render_stats};

use std::fs;
use std::path::{Path, PathBuf};

/// Writes a file durably-by-construction: the contents land in a
/// sibling temp file which is renamed over the target, so readers (and
/// crash survivors) only ever observe the old bytes or the new bytes —
/// never a torn mixture. Every artifact the CLI publishes (exports,
/// manifests, telemetry, shard plans) goes through here.
///
/// # Errors
///
/// Filesystem failures (reported with `context`).
pub fn atomic_write(path: &Path, contents: &[u8], context: &str) -> Result<(), CliError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents).map_err(|e| CliError::io(context, &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| CliError::io(context, path, e))
}

/// The manifest copy stored inside every campaign directory.
pub const STORED_MANIFEST: &str = "manifest.toml";

/// A scheduling pass plus the artifact export that followed it.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// What the scheduler did.
    pub summary: RunSummary,
    /// What the exporter wrote.
    pub export: ExportReport,
}

/// Persists the canonical manifest into `out_dir` (first run) or checks
/// it against the stored copy (re-run/resume), so one campaign
/// directory always corresponds to one experiment.
///
/// # Errors
///
/// Filesystem failures, or a stored manifest that differs.
pub fn store_or_check_manifest(manifest: &Manifest, out_dir: &Path) -> Result<(), CliError> {
    fs::create_dir_all(out_dir)
        .map_err(|e| CliError::io("creating campaign directory", out_dir, e))?;
    let path = out_dir.join(STORED_MANIFEST);
    let canonical = manifest.to_toml();
    match fs::read_to_string(&path) {
        Ok(stored) if stored == canonical => Ok(()),
        Ok(_) => Err(CliError::manifest(format!(
            "{} already holds a different campaign (see {}); \
             use a fresh --out directory or `qufi resume`",
            out_dir.display(),
            path.display(),
        ))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            atomic_write(&path, canonical.as_bytes(), "storing manifest")
        }
        Err(e) => Err(CliError::io("reading stored manifest", &path, e)),
    }
}

/// Loads the manifest a campaign directory was created from.
///
/// # Errors
///
/// A missing or invalid stored manifest.
pub fn load_stored_manifest(out_dir: &Path) -> Result<Manifest, CliError> {
    let path = out_dir.join(STORED_MANIFEST);
    let text = fs::read_to_string(&path).map_err(|e| {
        CliError::io(
            "reading stored manifest (is this a campaign directory?)",
            &path,
            e,
        )
    })?;
    Manifest::from_toml(&text)
}

/// One full `qufi run`: persist the manifest, schedule, and export.
/// Under a point budget the run may come back [`RunStatus::Interrupted`]
/// with partial artifacts; a later call (or `qufi resume`) finishes it.
///
/// With [`RunOptions::metrics`] the telemetry recorder is reset and
/// enabled around the run, and `metrics.json`/`costs.csv` (plus
/// `trace.jsonl` under [`RunOptions::trace`]) land in `out_dir` — next
/// to the stored manifest, never inside `results/`, whose bytes are
/// identical with telemetry on or off.
///
/// # Errors
///
/// Everything [`run_campaign`] and [`export_artifacts`] can raise.
pub fn run_to_completion(
    manifest: &Manifest,
    out_dir: &Path,
    opts: &RunOptions,
) -> Result<CampaignOutcome, CliError> {
    store_or_check_manifest(manifest, out_dir)?;
    let telemetry = opts.metrics || opts.trace;
    if telemetry {
        qufi_obs::reset();
        qufi_obs::enable();
        if opts.trace {
            qufi_obs::enable_trace();
        }
    }
    let outcome = (|| {
        let total_span = qufi_obs::span("campaign.total_ns");
        let summary = run_campaign(manifest, out_dir, opts)?;
        let export = export_artifacts(manifest, out_dir)?;
        total_span.finish();
        Ok(CampaignOutcome { summary, export })
    })();
    if telemetry {
        qufi_obs::disable();
        if outcome.is_ok() {
            obs_artifacts::write_artifacts(out_dir, opts.trace)?;
        }
    }
    outcome
}

/// `qufi resume`: continue the campaign stored in `out_dir`.
///
/// # Errors
///
/// Everything [`run_to_completion`] can raise, plus a missing stored
/// manifest.
pub fn resume(out_dir: &Path, opts: &RunOptions) -> Result<CampaignOutcome, CliError> {
    let manifest = load_stored_manifest(out_dir)?;
    run_to_completion(&manifest, out_dir, opts)
}

/// Default output directory for a campaign: `qufi-runs/<name>` under
/// the working directory.
pub fn default_out_dir(manifest: &Manifest) -> PathBuf {
    PathBuf::from("qufi-runs").join(&manifest.name)
}
