//! Crash-safe work leases: how sharded-campaign workers claim units,
//! prove liveness, and steal from the dead.
//!
//! A lease is a file under `<campaign>/units/` (`<unit>.lease`). The
//! protocol leans on two POSIX atomicities and one system-level safety
//! net:
//!
//! * **Claim** = `O_CREAT|O_EXCL` — exactly one creator wins.
//! * **Takeover** of a stale lease = `rename` it to a per-worker tomb
//!   first. A file can be renamed away only once, so of all workers
//!   that saw the same stale lease, exactly one proceeds to re-claim;
//!   the rest observe `ENOENT` and back off.
//! * **Safety net** — unit execution is deterministic and the merge
//!   layer deduplicates records by (point, θ, φ), so even if a claim
//!   race ever produced two owners (e.g. a worker that stalls longer
//!   than its lease and later resumes writing), the campaign's merged
//!   bytes are unaffected; only wall-clock is wasted. Leases are an
//!   *efficiency* mechanism; correctness never rests on them.
//!
//! Liveness is the lease file's mtime: owners refresh it on a heartbeat
//! (content rewrite in place), and anyone finding an mtime older than
//! the configured timeout may take over. Wall-clock time steers
//! scheduling only — it never reaches a record, so results stay
//! byte-deterministic.
//!
//! Transient filesystem failures during claim/refresh retry on a
//! [`Backoff`] schedule that is *derived*, not sampled: delays come from
//! the attempt number and a [`SeedHasher`] jitter keyed on (worker,
//! unit, attempt), so a given worker replays the identical schedule
//! every run — no wall-clock RNG anywhere in the protocol.
//!
//! [`SeedHasher`]: qufi_core::engine::SeedHasher

use crate::chaos;
use crate::error::CliError;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Lease-protocol knobs.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// This worker's name (lease contents, tomb suffixes, shard files).
    pub worker: String,
    /// A lease whose mtime is older than this is stale and may be
    /// taken over.
    pub timeout: Duration,
}

impl LeaseConfig {
    /// Heartbeat cadence: refresh well inside the takeover window.
    pub fn heartbeat_interval(&self) -> Duration {
        (self.timeout / 4).max(Duration::from_millis(10))
    }
}

/// Why a claim attempt did not produce a lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimMiss {
    /// A live owner holds the lease.
    Held,
    /// The lease was stale but another worker won the takeover race.
    LostTakeover,
}

/// What a claim attempt produced.
pub enum Claim {
    /// This worker now owns the unit.
    Acquired(Lease),
    /// No lease acquired; scheduling hint inside.
    Miss(ClaimMiss),
}

/// An owned lease. Dropping it does **not** release (a crashed owner
/// must look identical to a hung one); call [`Lease::release`].
pub struct Lease {
    path: PathBuf,
    worker: String,
    /// Whether this claim displaced a stale owner.
    pub took_over: bool,
}

/// The lease path for a unit.
pub fn lease_path(units_dir: &Path, unit_id: &str) -> PathBuf {
    units_dir.join(format!("{unit_id}.lease"))
}

/// Attempts to claim `unit_id` for `cfg.worker`.
///
/// # Errors
///
/// Filesystem failures other than the expected claim races. (A chaos
/// `claim.io` fail point surfaces here as a synthetic I/O error.)
pub fn try_claim(units_dir: &Path, unit_id: &str, cfg: &LeaseConfig) -> Result<Claim, CliError> {
    let path = lease_path(units_dir, unit_id);
    if chaos::fail_point("claim.io") {
        return Err(CliError::io(
            "claiming unit lease",
            &path,
            chaos::synthetic_io_error("claim.io"),
        ));
    }
    match create_lease(&path, &cfg.worker) {
        Ok(()) => {
            reap_tombs(units_dir, unit_id, cfg);
            return Ok(Claim::Acquired(Lease {
                path,
                worker: cfg.worker.clone(),
                took_over: false,
            }));
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
        Err(e) => return Err(CliError::io("creating unit lease", &path, e)),
    }
    // A lease exists. Stale? (An unreadable mtime counts as fresh — when
    // in doubt, do not steal; expiry will make the call next round.)
    let stale = match fs::metadata(&path).and_then(|m| m.modified()) {
        Ok(mtime) => SystemTime::now()
            .duration_since(mtime)
            .map(|age| age >= cfg.timeout)
            .unwrap_or(false),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // Released or torn down between our create and stat: treat as
            // lost this round; the next scan will claim it cleanly.
            return Ok(Claim::Miss(ClaimMiss::LostTakeover));
        }
        Err(_) => false,
    };
    if !stale {
        return Ok(Claim::Miss(ClaimMiss::Held));
    }
    // Takeover: rename the stale lease to our tomb. Only one such rename
    // can succeed, so the loser(s) of a simultaneous takeover see ENOENT.
    let tomb = units_dir.join(format!("{unit_id}.tomb.{}", cfg.worker));
    match fs::rename(&path, &tomb) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Claim::Miss(ClaimMiss::LostTakeover));
        }
        Err(e) => return Err(CliError::io("entombing stale lease", &path, e)),
    }
    let _ = fs::remove_file(&tomb);
    match create_lease(&path, &cfg.worker) {
        Ok(()) => {
            qufi_obs::add("lease.takeovers", 1);
            Ok(Claim::Acquired(Lease {
                path,
                worker: cfg.worker.clone(),
                took_over: true,
            }))
        }
        // Between our rename-away and re-create, a third worker claimed
        // fresh. Fine: somebody owns it, and it is not us.
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            Ok(Claim::Miss(ClaimMiss::LostTakeover))
        }
        Err(e) => Err(CliError::io("re-creating lease after takeover", &path, e)),
    }
}

fn create_lease(path: &Path, worker: &str) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)?;
    f.write_all(format!("worker = {worker}\n").as_bytes())
}

/// Best-effort cleanup of tombs left by takeover attempts that crashed
/// between rename and re-create. Tombs block nothing (the claim path
/// never reads them); this only keeps the directory tidy.
fn reap_tombs(units_dir: &Path, unit_id: &str, cfg: &LeaseConfig) {
    let Ok(entries) = fs::read_dir(units_dir) else {
        return;
    };
    let prefix = format!("{unit_id}.tomb.");
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with(&prefix) {
            continue;
        }
        let old = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= cfg.timeout);
        if old {
            let _ = fs::remove_file(entry.path());
        }
    }
}

impl Lease {
    /// Heartbeat: rewrite the lease in place so its mtime advances.
    /// Rewriting (not rename) keeps the takeover rename race-free — the
    /// inode under `<unit>.lease` changes only at claim boundaries.
    ///
    /// # Errors
    ///
    /// Filesystem failures (and the chaos `lease.refresh` fail point).
    pub fn refresh(&self) -> Result<(), CliError> {
        chaos::kill_point("lease.refresh");
        if chaos::fail_point("lease.refresh") {
            return Err(CliError::io(
                "refreshing lease",
                &self.path,
                chaos::synthetic_io_error("lease.refresh"),
            ));
        }
        fs::write(&self.path, format!("worker = {}\n", self.worker))
            .map_err(|e| CliError::io("refreshing lease", &self.path, e))?;
        qufi_obs::add("lease.refreshes", 1);
        Ok(())
    }

    /// Whether this worker still holds the lease (a hung-then-resumed
    /// owner checks before publishing, shrinking the double-owner window
    /// to the takeover interval itself).
    pub fn still_mine(&self) -> bool {
        fs::read_to_string(&self.path)
            .map(|text| text == format!("worker = {}\n", self.worker))
            .unwrap_or(false)
    }

    /// Releases the unit (unlinks the lease).
    pub fn release(self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Capped exponential backoff with a deterministic, derived jitter —
/// the retry schedule for transient claim/refresh/write failures. Now
/// shared with the campaign service's worker supervision, so the
/// implementation lives in [`qufi_core::retry`].
pub use qufi_core::retry::Backoff;

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_units(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qufi-lease-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(worker: &str, timeout_ms: u64) -> LeaseConfig {
        LeaseConfig {
            worker: worker.to_string(),
            timeout: Duration::from_millis(timeout_ms),
        }
    }

    #[test]
    fn second_claim_loses_then_release_frees() {
        let dir = temp_units("claim");
        let a = match try_claim(&dir, "u1", &cfg("a", 60_000)).unwrap() {
            Claim::Acquired(l) => l,
            Claim::Miss(_) => panic!("first claim must win"),
        };
        assert!(a.still_mine());
        match try_claim(&dir, "u1", &cfg("b", 60_000)).unwrap() {
            Claim::Miss(ClaimMiss::Held) => {}
            _ => panic!("fresh lease must be held"),
        }
        a.release();
        match try_claim(&dir, "u1", &cfg("b", 60_000)).unwrap() {
            Claim::Acquired(b) => {
                assert!(!b.took_over);
                b.release();
            }
            Claim::Miss(_) => panic!("released lease must be claimable"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_leases_are_taken_over_exactly_once() {
        let dir = temp_units("steal");
        let dead = match try_claim(&dir, "u1", &cfg("dead", 30)).unwrap() {
            Claim::Acquired(l) => l,
            Claim::Miss(_) => panic!(),
        };
        std::thread::sleep(Duration::from_millis(60));
        // Two thieves race: exactly one wins the takeover.
        let mut wins = 0;
        for thief in ["t1", "t2"] {
            if let Claim::Acquired(l) = try_claim(&dir, "u1", &cfg(thief, 30)).unwrap() {
                assert!(l.took_over);
                assert!(!dead.still_mine());
                wins += 1;
            }
        }
        assert_eq!(wins, 1, "a stale lease must be stolen exactly once");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn refresh_defers_takeover() {
        let dir = temp_units("refresh");
        let owner = match try_claim(&dir, "u1", &cfg("o", 80)).unwrap() {
            Claim::Acquired(l) => l,
            Claim::Miss(_) => panic!(),
        };
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            owner.refresh().unwrap();
            match try_claim(&dir, "u1", &cfg("thief", 80)).unwrap() {
                Claim::Miss(ClaimMiss::Held) => {}
                _ => panic!("refreshed lease stolen"),
            }
        }
        owner.release();
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_finite() {
        let schedule = |key: &str| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 5, key);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        let a = schedule("w1/u1");
        assert_eq!(a.len(), 5);
        assert_eq!(a, schedule("w1/u1"), "schedule must replay identically");
        assert_ne!(a, schedule("w2/u1"), "jitter must differ per key");
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10 * (1 << i)).min(Duration::from_millis(80));
            assert!(
                *d >= exp && *d < exp + Duration::from_millis(10),
                "{i}: {d:?}"
            );
        }
    }
}
