//! Deutsch-Jozsa.
//!
//! Decides whether an oracle is constant or balanced with one query — "the
//! first algorithm that showed that Quantum Computers could be faster than
//! classical computers" (§V-A). A constant oracle yields the all-zeros
//! output; the canonical balanced oracle (parity) yields all-ones.

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;

/// Oracle flavour for Deutsch-Jozsa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = 0` for all inputs: output is `00…0`.
    ConstantZero,
    /// `f(x) = 1` for all inputs: output is `00…0` (global phase only).
    ConstantOne,
    /// The parity oracle `f(x) = x₀⊕…⊕x_{n−1}`: output is `11…1`.
    Balanced,
}

/// Builds the Deutsch-Jozsa workload over `n_query` query qubits plus one
/// ancilla.
///
/// # Panics
///
/// Panics if `n_query == 0`.
///
/// # Example
///
/// ```
/// use qufi_algos::{deutsch_jozsa, DjOracle};
///
/// let w = deutsch_jozsa(3, DjOracle::Balanced);
/// assert_eq!(w.circuit.num_qubits(), 4);
/// assert_eq!(w.correct_bitstrings(), vec!["111"]);
/// ```
pub fn deutsch_jozsa(n_query: usize, oracle: DjOracle) -> Workload {
    assert!(n_query > 0, "need at least one query qubit");
    let n = n_query + 1;
    let ancilla = n_query;
    let mut qc = QuantumCircuit::with_name(n, n_query, &format!("dj-{n}"));

    qc.x(ancilla).h(ancilla);
    for q in 0..n_query {
        qc.h(q);
    }
    qc.barrier(&[]);
    match oracle {
        DjOracle::ConstantZero => {
            // f ≡ 0: identity oracle. Keep an explicit id so the circuit has
            // a fault-injection site inside the oracle region.
            qc.i(ancilla);
        }
        DjOracle::ConstantOne => {
            qc.x(ancilla);
        }
        DjOracle::Balanced => {
            for q in 0..n_query {
                qc.cx(q, ancilla);
            }
        }
    }
    qc.barrier(&[]);
    for q in 0..n_query {
        qc.h(q);
        qc.measure(q, q);
    }
    let golden = match oracle {
        DjOracle::ConstantZero | DjOracle::ConstantOne => 0,
        DjOracle::Balanced => (1 << n_query) - 1,
    };
    Workload::new(qc, vec![golden], &format!("dj-{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    fn output_dist(w: &Workload) -> qufi_sim::ProbDist {
        Statevector::from_circuit(&w.circuit)
            .unwrap()
            .measurement_distribution(&w.circuit)
    }

    #[test]
    fn constant_oracles_give_all_zeros() {
        for oracle in [DjOracle::ConstantZero, DjOracle::ConstantOne] {
            for n in 1..=5 {
                let w = deutsch_jozsa(n, oracle);
                assert!(
                    (output_dist(&w).prob(0) - 1.0).abs() < 1e-9,
                    "{oracle:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn balanced_oracle_gives_all_ones() {
        for n in 1..=5 {
            let w = deutsch_jozsa(n, DjOracle::Balanced);
            let all_ones = (1 << n) - 1;
            assert!((output_dist(&w).prob(all_ones) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_and_balanced_are_perfectly_distinguishable() {
        // The defining property of DJ: the all-zeros outcome separates the
        // two oracle classes with certainty.
        let c = deutsch_jozsa(3, DjOracle::ConstantZero);
        let b = deutsch_jozsa(3, DjOracle::Balanced);
        assert!(output_dist(&c).prob(0) > 0.999);
        assert!(output_dist(&b).prob(0) < 1e-9);
    }

    #[test]
    fn shape_matches_paper_4_qubit_instance() {
        let w = deutsch_jozsa(3, DjOracle::Balanced);
        assert_eq!(w.circuit.num_qubits(), 4);
        assert_eq!(w.circuit.num_clbits(), 3);
        assert_eq!(w.name, "dj-4");
    }
}
