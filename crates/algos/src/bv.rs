//! Bernstein-Vazirani.
//!
//! Recovers an `n`-bit secret string `s` from a single query to the oracle
//! `f(x) = s·x mod 2`. The circuit uses `n` input qubits plus one ancilla
//! prepared in `|−⟩`; the paper's Fig. 4 instance is the 4-qubit circuit
//! with secret `101`.

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;

/// Builds the Bernstein-Vazirani workload for an `n_bits`-bit `secret`
/// (total width `n_bits + 1` qubits; the ancilla is the last qubit and is
/// not measured, exactly as in Qiskit's textbook construction).
///
/// # Panics
///
/// Panics if `n_bits == 0` or `secret >= 2^n_bits`.
///
/// # Example
///
/// ```
/// use qufi_algos::bernstein_vazirani;
///
/// let w = bernstein_vazirani(0b101, 3);
/// assert_eq!(w.circuit.num_qubits(), 4);
/// assert_eq!(w.correct_bitstrings(), vec!["101"]);
/// ```
pub fn bernstein_vazirani(secret: usize, n_bits: usize) -> Workload {
    assert!(n_bits > 0, "secret must have at least one bit");
    assert!(
        secret < (1 << n_bits),
        "secret does not fit in {n_bits} bits"
    );
    let n = n_bits + 1;
    let ancilla = n_bits;
    let mut qc = QuantumCircuit::with_name(n, n_bits, &format!("bv-{n}"));

    // Ancilla in |−⟩ for phase kickback.
    qc.x(ancilla).h(ancilla);
    // Uniform superposition over the query register.
    for q in 0..n_bits {
        qc.h(q);
    }
    qc.barrier(&[]);
    // Oracle: CX from each secret-bit qubit into the ancilla.
    for q in 0..n_bits {
        if (secret >> q) & 1 == 1 {
            qc.cx(q, ancilla);
        }
    }
    qc.barrier(&[]);
    // Interfere and read out.
    for q in 0..n_bits {
        qc.h(q);
        qc.measure(q, q);
    }
    Workload::new(qc, vec![secret], &format!("bv-{n}"))
}

/// The alternating secret `1010…` (MSB first) on `len` bits — the pattern
/// used when scaling the benchmarks, e.g. `101` for 3 bits, `1010` for 4.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn alternating_secret(len: usize) -> usize {
    assert!(len > 0, "empty secret");
    let mut s = 0usize;
    for bit in 0..len {
        // MSB-first alternation starting with 1.
        let msb_pos = len - 1 - bit;
        if bit % 2 == 0 {
            s |= 1 << msb_pos;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn recovers_every_3bit_secret() {
        for secret in 0..8 {
            let w = bernstein_vazirani(secret, 3);
            let sv = Statevector::from_circuit(&w.circuit).unwrap();
            let dist = sv.measurement_distribution(&w.circuit);
            assert!(
                (dist.prob(secret) - 1.0).abs() < 1e-9,
                "secret {secret} not recovered"
            );
        }
    }

    #[test]
    fn paper_instance_matches_fig4() {
        let w = bernstein_vazirani(0b101, 3);
        assert_eq!(w.circuit.num_qubits(), 4);
        assert_eq!(w.circuit.num_clbits(), 3);
        // Two CX gates (secret has two ones).
        let counts = w.circuit.gate_counts();
        let cx = counts.iter().find(|(n, _)| *n == "cx").unwrap().1;
        assert_eq!(cx, 2);
        // 7 Hadamards: 3 + ancilla + 3.
        let h = counts.iter().find(|(n, _)| *n == "h").unwrap().1;
        assert_eq!(h, 7);
    }

    #[test]
    fn ancilla_is_not_measured() {
        let w = bernstein_vazirani(0b11, 2);
        let measured: Vec<usize> = w
            .circuit
            .measurement_map()
            .iter()
            .map(|&(q, _)| q)
            .collect();
        assert!(!measured.contains(&2));
    }

    #[test]
    fn zero_secret_has_no_oracle_gates() {
        let w = bernstein_vazirani(0, 3);
        let counts = w.circuit.gate_counts();
        assert!(counts.iter().all(|(n, _)| *n != "cx"));
        let sv = Statevector::from_circuit(&w.circuit).unwrap();
        assert!((sv.measurement_distribution(&w.circuit).prob(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_secret_patterns() {
        assert_eq!(alternating_secret(3), 0b101);
        assert_eq!(alternating_secret(4), 0b1010);
        assert_eq!(alternating_secret(5), 0b10101);
        assert_eq!(alternating_secret(1), 0b1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_secret_rejected() {
        let _ = bernstein_vazirani(8, 3);
    }
}
