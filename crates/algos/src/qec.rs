//! Quantum error-correction workloads: the 3-qubit repetition codes.
//!
//! The paper's motivation (§II-B/§II-C): "QEC is designed to protect a qubit
//! from the intrinsic noise … current QEC is not sufficient to guarantee
//! reliability from transient faults". These workloads make that claim
//! testable inside QuFI: the bit-flip code masks any single θ=π (X-like)
//! fault injected between encode and decode, yet a φ=π (Z-like) fault on
//! the same window sails through — and vice versa for the phase-flip code.
//!
//! Layout: qubit 0 carries the logical state, qubits 1–2 are code qubits,
//! and the decoder corrects via majority vote (two CX + one Toffoli).

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;

/// Marks the fault window of a QEC workload: operation indices strictly
/// inside the encoded region (between the encode and decode barriers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeRegion {
    /// First in-window operation index.
    pub start: usize,
    /// One past the last in-window operation index.
    pub end: usize,
}

/// A QEC workload plus its fault window.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeWorkload {
    /// The circuit + golden outputs.
    pub workload: Workload,
    /// Where faults should be injected to test the code.
    pub region: CodeRegion,
}

/// Builds the 3-qubit **bit-flip** repetition code protecting the logical
/// state `|1⟩` (when `one` is true) or `|0⟩`: encode, idle window (three
/// `id` slots for fault injection), decode + majority-vote correction,
/// measure the logical qubit.
pub fn bit_flip_code(one: bool) -> CodeWorkload {
    let mut qc = QuantumCircuit::with_name(3, 1, "bitflip-3");
    if one {
        qc.x(0);
    }
    // Encode |ψ⟩ → |ψψψ⟩.
    qc.cx(0, 1).cx(0, 2);
    qc.barrier(&[]);
    let start = qc.size();
    // The unprotected window: identity slots are the injectable "memory".
    qc.i(0).i(1).i(2);
    let end = qc.size();
    qc.barrier(&[]);
    // Decode: syndromes into q1/q2, majority vote corrects q0.
    qc.cx(0, 1).cx(0, 2).ccx(2, 1, 0);
    qc.measure(0, 0);
    let golden = usize::from(one);
    CodeWorkload {
        workload: Workload::new(qc, vec![golden], "bitflip-3"),
        region: CodeRegion { start, end },
    }
}

/// Builds the 3-qubit **phase-flip** repetition code (the bit-flip code
/// conjugated by Hadamards), protecting `|+⟩` or `|−⟩`; measurement is in
/// the X basis so the golden output is deterministic.
pub fn phase_flip_code(minus: bool) -> CodeWorkload {
    let mut qc = QuantumCircuit::with_name(3, 1, "phaseflip-3");
    if minus {
        qc.x(0);
    }
    qc.cx(0, 1).cx(0, 2);
    qc.h(0).h(1).h(2);
    qc.barrier(&[]);
    let start = qc.size();
    qc.i(0).i(1).i(2);
    let end = qc.size();
    qc.barrier(&[]);
    qc.h(0).h(1).h(2);
    qc.cx(0, 1).cx(0, 2).ccx(2, 1, 0);
    qc.measure(0, 0);
    let golden = usize::from(minus);
    CodeWorkload {
        workload: Workload::new(qc, vec![golden], "phaseflip-3"),
        region: CodeRegion { start, end },
    }
}

/// An **unprotected** single-qubit reference with the same fault window,
/// for apples-to-apples comparison against the codes.
pub fn unprotected(one: bool) -> CodeWorkload {
    let mut qc = QuantumCircuit::with_name(1, 1, "unprotected-1");
    if one {
        qc.x(0);
    }
    qc.barrier(&[]);
    let start = qc.size();
    qc.i(0);
    let end = qc.size();
    qc.barrier(&[]);
    qc.measure(0, 0);
    CodeWorkload {
        workload: Workload::new(qc, vec![usize::from(one)], "unprotected-1"),
        region: CodeRegion { start, end },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::{Gate, Statevector};
    use std::f64::consts::PI;

    fn run(qc: &QuantumCircuit) -> f64 {
        let w_golden = 0; // caller checks specific outcome
        let _ = w_golden;
        let sv = Statevector::from_circuit(qc).unwrap();
        sv.measurement_distribution(qc).prob(1)
    }

    fn inject(qc: &QuantumCircuit, at: usize, gate: Gate, qubit: usize) -> QuantumCircuit {
        let mut out = qc.clone();
        out.insert(at, gate, &[qubit]);
        out
    }

    #[test]
    fn codes_are_transparent_without_faults() {
        for one in [false, true] {
            let c = bit_flip_code(one);
            let p1 = run(&c.workload.circuit);
            assert!((p1 - if one { 1.0 } else { 0.0 }).abs() < 1e-9);
            let c = phase_flip_code(one);
            let p1 = run(&c.workload.circuit);
            assert!((p1 - if one { 1.0 } else { 0.0 }).abs() < 1e-9);
        }
    }

    #[test]
    fn bit_flip_code_masks_any_single_x_fault() {
        let c = bit_flip_code(true);
        for q in 0..3 {
            // θ=π fault ≡ X (up to phase) inside the window.
            let faulty = inject(&c.workload.circuit, c.region.end, Gate::U(PI, 0.0, 0.0), q);
            let p1 = run(&faulty);
            assert!(
                (p1 - 1.0).abs() < 1e-9,
                "X fault on q{q} not corrected: p1={p1}"
            );
        }
    }

    #[test]
    fn bit_flip_code_does_not_mask_phase_faults() {
        // A Z-like fault (φ=π) on the logical branch is invisible to the
        // bit-flip code's stabilizers — the paper's point about QEC vs
        // unanticipated fault models. For |1⟩ in the computational basis a
        // pure phase is harmless; to expose it, protect a superposed state.
        let mut qc = QuantumCircuit::with_name(3, 1, "bitflip-super");
        qc.h(0); // logical |+⟩
        qc.cx(0, 1).cx(0, 2);
        let at = qc.size();
        qc.i(0);
        qc.cx(0, 1).cx(0, 2).ccx(2, 1, 0);
        qc.h(0); // back to computational basis: expect |0⟩
        qc.measure(0, 0);

        let clean_p1 = run(&qc);
        assert!(clean_p1 < 1e-9);
        // Inject Z on the data qubit inside the window: the code cannot see
        // it, and after the final H it becomes a logical bit-flip.
        let faulty = inject(&qc, at, Gate::U(0.0, PI, 0.0), 0);
        let p1 = run(&faulty);
        assert!(
            p1 > 0.99,
            "phase fault should defeat the bit-flip code: p1={p1}"
        );
    }

    #[test]
    fn phase_flip_code_masks_single_z_fault() {
        let c = phase_flip_code(true);
        for q in 0..3 {
            let faulty = inject(&c.workload.circuit, c.region.end, Gate::U(0.0, PI, 0.0), q);
            let p1 = run(&faulty);
            assert!(
                (p1 - 1.0).abs() < 1e-9,
                "Z fault on q{q} not corrected: p1={p1}"
            );
        }
    }

    #[test]
    fn phase_flip_code_fails_on_x_faults() {
        // On code eigenstates an X fault is only a (harmless) phase, so
        // protect the superposition (|0_L⟩+|1_L⟩)/√2 instead: an X fault on
        // any code qubit flips the superposition's relative phase — a
        // logical error the phase-flip stabilizers cannot see.
        let mut qc = QuantumCircuit::with_name(3, 1, "phaseflip-super");
        qc.h(0); // logical superposition
        qc.cx(0, 1).cx(0, 2);
        qc.h(0).h(1).h(2);
        let at = qc.size();
        qc.i(0);
        qc.h(0).h(1).h(2);
        qc.cx(0, 1).cx(0, 2).ccx(2, 1, 0);
        qc.h(0); // rotate back: fault-free outcome is |0⟩
        qc.measure(0, 0);

        assert!(run(&qc) < 1e-9, "clean run must yield 0");
        let faulty = inject(&qc, at, Gate::U(PI, 0.0, 0.0), 0);
        let p1 = run(&faulty);
        assert!(
            p1 > 0.99,
            "X fault should defeat the phase-flip code: p1={p1}"
        );
    }

    #[test]
    fn double_x_faults_defeat_bit_flip_code() {
        // Majority vote fails on two simultaneous flips — the multi-qubit
        // fault scenario of §III-C.
        let c = bit_flip_code(true);
        let mut faulty = c.workload.circuit.clone();
        faulty.insert(c.region.end, Gate::X, &[1]);
        faulty.insert(c.region.end + 1, Gate::X, &[2]);
        let p1 = run(&faulty);
        assert!(p1 < 1e-9, "double flip should corrupt the logical qubit");
    }

    #[test]
    fn partial_theta_fault_is_partially_corrected() {
        // θ = π/2: the code collapses the superposed error branch; majority
        // vote still recovers the logical value with high probability.
        let c = bit_flip_code(true);
        let faulty = inject(
            &c.workload.circuit,
            c.region.end,
            Gate::U(PI / 2.0, 0.0, 0.0),
            1,
        );
        let p1 = run(&faulty);
        assert!(p1 > 0.99, "single partial flip should be corrected: {p1}");
    }

    #[test]
    fn unprotected_reference_fails_where_code_succeeds() {
        let u = unprotected(true);
        let faulty = inject(&u.workload.circuit, u.region.end, Gate::U(PI, 0.0, 0.0), 0);
        let p1 = run(&faulty);
        assert!(p1 < 1e-9, "unprotected qubit must flip: {p1}");
    }

    #[test]
    fn regions_cover_only_the_idle_window() {
        let c = bit_flip_code(false);
        assert_eq!(c.region.end - c.region.start, 3);
        let u = unprotected(false);
        assert_eq!(u.region.end - u.region.start, 1);
    }
}
