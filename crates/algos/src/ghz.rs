//! GHZ state preparation — an extension workload with *two* golden outputs,
//! exercising the QVF's multiple-correct-state aggregation ("the extension
//! for multiple-state circuits can be easily performed by aggregating the
//! probabilities of all correct states into P(A)", §IV-A).

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;

/// Builds the `n`-qubit GHZ workload `(|0…0⟩ + |1…1⟩)/√2`; both all-zeros
/// and all-ones are correct outputs.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// use qufi_algos::ghz;
///
/// let w = ghz(4);
/// assert_eq!(w.correct_outputs, vec![0, 0b1111]);
/// ```
pub fn ghz(n: usize) -> Workload {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut qc = QuantumCircuit::with_name(n, n, &format!("ghz-{n}"));
    qc.h(0);
    for q in 0..n - 1 {
        qc.cx(q, q + 1);
    }
    qc.measure_all();
    Workload::new(qc, vec![0, (1 << n) - 1], &format!("ghz-{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn ghz_mass_splits_between_golden_states() {
        for n in 2..=6 {
            let w = ghz(n);
            let dist = Statevector::from_circuit(&w.circuit)
                .unwrap()
                .measurement_distribution(&w.circuit);
            assert!((dist.prob(0) - 0.5).abs() < 1e-9);
            assert!((dist.prob((1 << n) - 1) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn golden_probability_sums_to_one() {
        let w = ghz(5);
        let dist = Statevector::from_circuit(&w.circuit)
            .unwrap()
            .measurement_distribution(&w.circuit);
        let p: f64 = w.correct_outputs.iter().map(|&o| dist.prob(o)).sum();
        assert!((p - 1.0).abs() < 1e-9);
    }
}
