//! Grover search — an extension workload with deeper circuits than the
//! paper's three benchmarks, useful for depth-sensitivity studies.

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;

/// Builds a Grover-search workload over `n ∈ {2, 3}` qubits marking the
/// basis state `marked`, running the optimal number of iterations
/// (1 for n=2 — exact; 2 for n=3 — success probability ≈ 94.5%).
///
/// # Panics
///
/// Panics unless `n ∈ {2, 3}` and `marked < 2^n`.
///
/// # Example
///
/// ```
/// use qufi_algos::grover;
/// use qufi_sim::Statevector;
///
/// let w = grover(2, 0b11);
/// let d = Statevector::from_circuit(&w.circuit).unwrap()
///     .measurement_distribution(&w.circuit);
/// assert!((d.prob(0b11) - 1.0).abs() < 1e-9);
/// ```
pub fn grover(n: usize, marked: usize) -> Workload {
    assert!(n == 2 || n == 3, "grover implemented for 2 or 3 qubits");
    assert!(marked < (1 << n), "marked state does not fit");
    let iterations = if n == 2 { 1 } else { 2 };
    let mut qc = QuantumCircuit::with_name(n, n, &format!("grover-{n}"));

    for q in 0..n {
        qc.h(q);
    }
    for _ in 0..iterations {
        append_phase_oracle(&mut qc, n, marked);
        append_diffuser(&mut qc, n);
    }
    qc.measure_all();
    Workload::new(qc, vec![marked], &format!("grover-{n}"))
}

/// Phase oracle flipping the sign of `|marked⟩`, built from a controlled-Z
/// conjugated by X gates on the zero bits.
fn append_phase_oracle(qc: &mut QuantumCircuit, n: usize, marked: usize) {
    let zero_bits: Vec<usize> = (0..n).filter(|&b| (marked >> b) & 1 == 0).collect();
    for &b in &zero_bits {
        qc.x(b);
    }
    append_multi_cz(qc, n);
    for &b in &zero_bits {
        qc.x(b);
    }
}

/// The Grover diffuser `H^⊗n · (2|0⟩⟨0| − I) · H^⊗n`.
fn append_diffuser(qc: &mut QuantumCircuit, n: usize) {
    for q in 0..n {
        qc.h(q);
        qc.x(q);
    }
    append_multi_cz(qc, n);
    for q in 0..n {
        qc.x(q);
        qc.h(q);
    }
}

/// A Z on the all-ones subspace: CZ for n=2, CCZ (via H·CCX·H) for n=3.
fn append_multi_cz(qc: &mut QuantumCircuit, n: usize) {
    match n {
        2 => {
            qc.cz(0, 1);
        }
        3 => {
            qc.h(2).ccx(0, 1, 2).h(2);
        }
        _ => unreachable!("grover width checked at entry"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn two_qubit_grover_is_exact_for_all_targets() {
        for marked in 0..4 {
            let w = grover(2, marked);
            let d = Statevector::from_circuit(&w.circuit)
                .unwrap()
                .measurement_distribution(&w.circuit);
            assert!(
                (d.prob(marked) - 1.0).abs() < 1e-9,
                "marked {marked}: p={}",
                d.prob(marked)
            );
        }
    }

    #[test]
    fn three_qubit_grover_amplifies_target() {
        for marked in [0b000, 0b101, 0b111] {
            let w = grover(3, marked);
            let d = Statevector::from_circuit(&w.circuit)
                .unwrap()
                .measurement_distribution(&w.circuit);
            // Two iterations on 8 items: sin²(5·asin(1/√8)) ≈ 0.945.
            assert!(
                (d.prob(marked) - 0.9453125).abs() < 1e-6,
                "marked {marked}: p={}",
                d.prob(marked)
            );
        }
    }

    #[test]
    fn grover_is_deeper_than_bv() {
        let g = grover(3, 0b101);
        let b = crate::bv::bernstein_vazirani(0b101, 3);
        assert!(g.circuit.depth() > b.circuit.depth());
    }
}
