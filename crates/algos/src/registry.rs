//! Named workload registry: `"family-n"` strings → circuit builders.
//!
//! Campaign manifests (and anything else that configures workloads from
//! text — CLIs, job specs, service requests) name circuits as
//! `<family>-<total_qubits>`, e.g. `bv-4` or `ghz-5`, matching the
//! `name` field the builders already stamp on their [`Workload`]s.

use crate::workload::Workload;
use core::fmt;

/// One instantiable circuit family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyInfo {
    /// Registry key prefix, e.g. `"bv"`.
    pub family: &'static str,
    /// Smallest supported total qubit count.
    pub min_qubits: usize,
    /// Largest supported total qubit count.
    pub max_qubits: usize,
    /// One-line description for `list` output.
    pub summary: &'static str,
}

/// Widest circuit the registry will instantiate. The density-matrix
/// executors pay gates × 312 × 4ⁿ per campaign and cap out around 12
/// qubits, but the Monte-Carlo trajectory executor replaces the 4ⁿ term
/// with shots × 2ⁿ, which keeps 13–16-qubit campaigns (e.g. on the
/// 16-qubit `guadalupe` backend) interactive. Manifest validation still
/// steers >12-qubit workloads onto the trajectory backend.
pub const MAX_REGISTRY_QUBITS: usize = 16;

const FAMILIES: &[FamilyInfo] = &[
    FamilyInfo {
        family: "bv",
        min_qubits: 2,
        max_qubits: MAX_REGISTRY_QUBITS,
        summary: "Bernstein-Vazirani, alternating secret (paper benchmark)",
    },
    FamilyInfo {
        family: "dj",
        min_qubits: 2,
        max_qubits: MAX_REGISTRY_QUBITS,
        summary: "Deutsch-Jozsa, balanced oracle (paper benchmark)",
    },
    FamilyInfo {
        family: "qft",
        min_qubits: 2,
        max_qubits: MAX_REGISTRY_QUBITS,
        summary: "QFT value encoding, alternating value (paper benchmark)",
    },
    FamilyInfo {
        family: "ghz",
        min_qubits: 2,
        max_qubits: MAX_REGISTRY_QUBITS,
        summary: "GHZ state, two golden outputs (extension)",
    },
    FamilyInfo {
        family: "grover",
        min_qubits: 2,
        max_qubits: 3,
        summary: "Grover search, alternating marked state (extension)",
    },
    FamilyInfo {
        family: "qpe",
        min_qubits: 2,
        max_qubits: MAX_REGISTRY_QUBITS,
        summary: "Quantum Phase Estimation, exact phase (extension)",
    },
];

/// The registered families.
pub fn families() -> &'static [FamilyInfo] {
    FAMILIES
}

/// A workload name the registry cannot satisfy, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The offending name.
    pub name: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload {:?}: {}", self.name, self.reason)
    }
}

impl std::error::Error for UnknownWorkload {}

fn err(name: &str, reason: impl Into<String>) -> UnknownWorkload {
    UnknownWorkload {
        name: name.to_owned(),
        reason: reason.into(),
    }
}

/// Splits `"family-n"` into the family info and total qubit count,
/// validating the range.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] for malformed names, unknown families and
/// out-of-range widths.
pub fn parse_workload_name(name: &str) -> Result<(&'static FamilyInfo, usize), UnknownWorkload> {
    let trimmed = name.trim();
    let (family, num) = trimmed
        .rsplit_once('-')
        .ok_or_else(|| err(name, "expected <family>-<qubits>, e.g. \"bv-4\""))?;
    let n: usize = num
        .parse()
        .map_err(|_| err(name, format!("qubit count {num:?} is not a number")))?;
    let info = FAMILIES
        .iter()
        .find(|f| f.family == family)
        .ok_or_else(|| {
            let known: Vec<&str> = FAMILIES.iter().map(|f| f.family).collect();
            err(name, format!("family {family:?} not in {known:?}"))
        })?;
    if n < info.min_qubits || n > info.max_qubits {
        return Err(err(
            name,
            format!(
                "{} supports {}..={} qubits, asked for {n}",
                info.family, info.min_qubits, info.max_qubits
            ),
        ));
    }
    Ok((info, n))
}

/// Builds the named workload.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] when [`parse_workload_name`] does.
pub fn build_workload(name: &str) -> Result<Workload, UnknownWorkload> {
    let (info, n) = parse_workload_name(name)?;
    Ok(match info.family {
        "bv" => crate::bv::bernstein_vazirani(crate::bv::alternating_secret(n - 1), n - 1),
        "dj" => crate::dj::deutsch_jozsa(n - 1, crate::dj::DjOracle::Balanced),
        "qft" => crate::qft::qft_value_encoding(n, crate::bv::alternating_secret(n)),
        "ghz" => crate::ghz::ghz(n),
        "grover" => crate::grover::grover(n, crate::bv::alternating_secret(n)),
        "qpe" => crate::qpe::quantum_phase_estimation(n - 1, crate::bv::alternating_secret(n - 1)),
        other => unreachable!("family {other} registered but not buildable"),
    })
}

/// Every valid registry name up to `max_qubits` total qubits — the
/// catalogue behind `qufi list workloads`.
pub fn workload_names(max_qubits: usize) -> Vec<String> {
    let mut out = Vec::new();
    for info in FAMILIES {
        for n in info.min_qubits..=info.max_qubits.min(max_qubits) {
            out.push(format!("{}-{n}", info.family));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogued_name_builds_and_matches_its_key() {
        for name in workload_names(5) {
            let w = build_workload(&name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(w.name, name, "registry key and workload name differ");
            let n: usize = name.rsplit_once('-').unwrap().1.parse().unwrap();
            assert_eq!(w.circuit.num_qubits(), n, "{name} width mismatch");
        }
    }

    #[test]
    fn paper_benchmarks_match_paper_workloads() {
        let from_registry = build_workload("bv-4").unwrap();
        let from_paper = &crate::workload::paper_workloads(4)[0];
        assert_eq!(&from_registry, from_paper);
    }

    #[test]
    fn malformed_names_are_rejected_with_reasons() {
        assert!(build_workload("bv")
            .unwrap_err()
            .reason
            .contains("expected"));
        assert!(build_workload("bv-x")
            .unwrap_err()
            .reason
            .contains("not a number"));
        assert!(build_workload("nope-4")
            .unwrap_err()
            .reason
            .contains("family"));
        assert!(build_workload("grover-5")
            .unwrap_err()
            .reason
            .contains("2..=3"));
        assert!(build_workload("ghz-1").unwrap_err().reason.contains("2..="));
    }

    #[test]
    fn names_trim_whitespace() {
        assert!(build_workload(" ghz-3 ").is_ok());
    }

    #[test]
    fn catalogue_respects_caller_cap() {
        assert!(workload_names(4).iter().all(|n| {
            let q: usize = n.rsplit_once('-').unwrap().1.parse().unwrap();
            q <= 4
        }));
    }
}
