//! Workload: a circuit paired with its golden outputs.

use qufi_sim::QuantumCircuit;

/// A benchmark circuit together with the classical outcomes a fault-free
/// execution should produce (the `P(A)` states of the QVF).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The circuit (measurements included).
    pub circuit: QuantumCircuit,
    /// Correct outcome indices over the classical register. Most workloads
    /// have exactly one; GHZ has two.
    pub correct_outputs: Vec<usize>,
    /// Human-readable name, e.g. `"bv-4"`.
    pub name: String,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `correct_outputs` is empty or an index exceeds the
    /// classical register.
    pub fn new(circuit: QuantumCircuit, correct_outputs: Vec<usize>, name: &str) -> Self {
        assert!(
            !correct_outputs.is_empty(),
            "need at least one golden state"
        );
        let max = 1usize << circuit.num_clbits();
        for &o in &correct_outputs {
            assert!(o < max, "golden state {o} out of range");
        }
        Workload {
            circuit,
            correct_outputs,
            name: name.to_owned(),
        }
    }

    /// The golden outputs rendered as MSB-first bitstrings.
    pub fn correct_bitstrings(&self) -> Vec<String> {
        self.correct_outputs
            .iter()
            .map(|&o| qufi_sim::counts::render_bits(o, self.circuit.num_clbits()))
            .collect()
    }
}

/// The paper's three benchmarks at a given total qubit count
/// (`4 ≤ n ≤ 12`): BV and DJ use an `n−1`-bit secret/oracle plus an
/// ancilla; QFT encodes an alternating-bit value on `n` qubits.
///
/// # Panics
///
/// Panics for `n < 2`.
pub fn paper_workloads(n: usize) -> Vec<Workload> {
    assert!(n >= 2, "workloads need at least 2 qubits");
    let secret = crate::bv::alternating_secret(n - 1);
    vec![
        crate::bv::bernstein_vazirani(secret, n - 1),
        crate::dj::deutsch_jozsa(n - 1, crate::dj::DjOracle::Balanced),
        crate::qft::qft_value_encoding(n, crate::bv::alternating_secret(n)),
    ]
}

/// The scaling family of one benchmark: instances at 4..=`max_qubits`
/// total qubits, as in the paper's Fig. 7 (4 to 7 qubits).
pub fn scaling_family(name: &str, max_qubits: usize) -> Vec<Workload> {
    (4..=max_qubits)
        .map(|n| match name {
            "bv" => crate::bv::bernstein_vazirani(crate::bv::alternating_secret(n - 1), n - 1),
            "dj" => crate::dj::deutsch_jozsa(n - 1, crate::dj::DjOracle::Balanced),
            "qft" => crate::qft::qft_value_encoding(n, crate::bv::alternating_secret(n)),
            "ghz" => crate::ghz::ghz(n),
            other => panic!("unknown workload family {other:?}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn paper_workloads_have_expected_shapes() {
        let ws = paper_workloads(4);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].name, "bv-4");
        assert_eq!(ws[1].name, "dj-4");
        assert_eq!(ws[2].name, "qft-4");
        for w in &ws {
            assert_eq!(w.circuit.num_qubits(), 4);
        }
    }

    #[test]
    fn all_workloads_produce_their_golden_output_noiselessly() {
        for n in 4..=7 {
            for w in paper_workloads(n) {
                let sv = Statevector::from_circuit(&w.circuit).unwrap();
                let dist = sv.measurement_distribution(&w.circuit);
                let p: f64 = w.correct_outputs.iter().map(|&o| dist.prob(o)).sum();
                assert!(p > 0.999, "{}: golden probability only {p:.4}", w.name);
            }
        }
    }

    #[test]
    fn scaling_families_grow() {
        let fam = scaling_family("qft", 7);
        assert_eq!(fam.len(), 4);
        for (i, w) in fam.iter().enumerate() {
            assert_eq!(w.circuit.num_qubits(), 4 + i);
        }
        assert_eq!(scaling_family("bv", 6).len(), 3);
    }

    #[test]
    fn correct_bitstrings_render() {
        let w = crate::bv::bernstein_vazirani(0b101, 3);
        assert_eq!(w.correct_bitstrings(), vec!["101".to_string()]);
    }

    #[test]
    #[should_panic(expected = "golden state")]
    fn out_of_range_golden_rejected() {
        let qc = QuantumCircuit::new(1, 1);
        let _ = Workload::new(qc, vec![5], "bad");
    }

    #[test]
    #[should_panic(expected = "unknown workload family")]
    fn unknown_family_panics() {
        let _ = scaling_family("nope", 5);
    }
}
