//! Quantum Phase Estimation.
//!
//! The paper singles out QPE as one of the algorithms built on the QFT
//! (§V-A: "a fundamental part of many quantum algorithms, such as Shor's
//! factoring algorithm, Quantum Phase Estimation"). This benchmark
//! estimates the phase of `P(2πφ)` on its `|1⟩` eigenstate with an
//! `n`-bit counting register; when `φ = k/2ⁿ` the estimate is exact, giving
//! the deterministic golden output the QVF needs.

use crate::qft::qft_circuit;
use crate::workload::Workload;
use qufi_sim::QuantumCircuit;
use std::f64::consts::PI;

/// Builds the QPE workload estimating `φ = k / 2^n_counting`.
///
/// Total width is `n_counting + 1` (the eigenstate qubit is last and is not
/// measured); the golden output is `k`.
///
/// # Panics
///
/// Panics if `n_counting == 0` or `k >= 2^n_counting`.
///
/// # Example
///
/// ```
/// use qufi_algos::qpe::quantum_phase_estimation;
/// use qufi_sim::Statevector;
///
/// // Estimate φ = 3/8 with 3 counting qubits: output must be |011⟩.
/// let w = quantum_phase_estimation(3, 3);
/// let d = Statevector::from_circuit(&w.circuit).unwrap()
///     .measurement_distribution(&w.circuit);
/// assert!((d.prob(3) - 1.0).abs() < 1e-9);
/// ```
pub fn quantum_phase_estimation(n_counting: usize, k: usize) -> Workload {
    assert!(n_counting > 0, "need at least one counting qubit");
    assert!(k < (1 << n_counting), "phase numerator does not fit");
    let n = n_counting + 1;
    let eigen = n_counting;
    let phi = k as f64 / (1u64 << n_counting) as f64;
    let mut qc = QuantumCircuit::with_name(n, n_counting, &format!("qpe-{n}"));

    // Eigenstate |1⟩ of P(2πφ).
    qc.x(eigen);
    // Counting register in superposition.
    for q in 0..n_counting {
        qc.h(q);
    }
    qc.barrier(&[]);
    // Controlled-U^{2^j}: controlled phase 2πφ·2^j from counting qubit j.
    for j in 0..n_counting {
        let angle = 2.0 * PI * phi * (1u64 << j) as f64;
        let angle = angle % (2.0 * PI);
        if angle.abs() > 1e-12 {
            qc.cp(angle, j, eigen);
        }
    }
    qc.barrier(&[]);
    // Inverse QFT on the counting register, then read it out.
    let mut iqft = qft_circuit(n_counting).inverse();
    iqft.name = String::new();
    qc.compose(&iqft);
    for q in 0..n_counting {
        qc.measure(q, q);
    }
    Workload::new(qc, vec![k], &format!("qpe-{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn exact_phases_are_recovered() {
        for n in 2..=4 {
            for k in 0..(1usize << n) {
                let w = quantum_phase_estimation(n, k);
                let d = Statevector::from_circuit(&w.circuit)
                    .unwrap()
                    .measurement_distribution(&w.circuit);
                assert!(
                    (d.prob(k) - 1.0).abs() < 1e-9,
                    "n={n}, k={k}: p={}",
                    d.prob(k)
                );
            }
        }
    }

    #[test]
    fn eigenstate_qubit_is_not_measured() {
        let w = quantum_phase_estimation(3, 5);
        let measured: Vec<usize> = w
            .circuit
            .measurement_map()
            .iter()
            .map(|&(q, _)| q)
            .collect();
        assert!(!measured.contains(&3));
        assert_eq!(w.circuit.num_clbits(), 3);
    }

    #[test]
    fn qpe_uses_the_qft_substrate() {
        let w = quantum_phase_estimation(4, 7);
        let counts = w.circuit.gate_counts();
        // 4-qubit inverse QFT contributes 6 cp gates; controlled-U adds more.
        let cp = counts
            .iter()
            .find(|(g, _)| *g == "cp")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(cp >= 6, "expected QFT cp gates, found {cp}");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_k_rejected() {
        let _ = quantum_phase_estimation(2, 4);
    }
}
