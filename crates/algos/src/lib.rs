//! Benchmark circuits for fault-injection studies.
//!
//! The paper evaluates three "of the most used and widely known quantum
//! circuits" (§V-A): **Bernstein-Vazirani**, **Deutsch-Jozsa** and the
//! **Quantum Fourier Transform**, each scaled from 4 to 7 qubits for the
//! circuit-scaling study (§V-C). This crate builds them (plus GHZ and Grover
//! as extensions) as [`Workload`]s that pair a circuit with its expected
//! (golden) outputs.
//!
//! # Example
//!
//! ```
//! use qufi_algos::{bernstein_vazirani, Workload};
//! use qufi_sim::Statevector;
//!
//! // The paper's Fig. 4 circuit: 4 qubits, secret 101.
//! let w = bernstein_vazirani(0b101, 3);
//! assert_eq!(w.circuit.num_qubits(), 4);
//! let sv = Statevector::from_circuit(&w.circuit).unwrap();
//! let dist = sv.measurement_distribution(&w.circuit);
//! assert!((dist.prob_of("101") - 1.0).abs() < 1e-9);
//! ```

pub mod bv;
pub mod dj;
pub mod ghz;
pub mod grover;
pub mod qec;
pub mod qft;
pub mod qpe;
pub mod registry;
pub mod workload;

pub use bv::{alternating_secret, bernstein_vazirani};
pub use dj::{deutsch_jozsa, DjOracle};
pub use ghz::ghz;
pub use grover::grover;
pub use qec::{bit_flip_code, phase_flip_code, CodeWorkload};
pub use qft::{qft_circuit, qft_value_encoding};
pub use qpe::quantum_phase_estimation;
pub use registry::{build_workload, parse_workload_name, workload_names, UnknownWorkload};
pub use workload::{paper_workloads, scaling_family, Workload};
