//! Quantum Fourier Transform.
//!
//! "The quantum analogue of the discrete Fourier transform … a fundamental
//! part of many quantum algorithms, such as Shor's factoring algorithm"
//! (§V-A). To obtain a deterministic golden output (needed by the QVF), the
//! benchmark encodes a known `value` in the Fourier basis with Hadamards and
//! phase rotations, then applies the **inverse** QFT, which must return the
//! computational-basis state `|value⟩`.

use crate::workload::Workload;
use qufi_sim::QuantumCircuit;
use std::f64::consts::PI;

/// Appends the standard QFT (with final bit-reversal swaps) on qubits
/// `0..n` of `qc`.
pub fn qft_circuit(n: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(n, 0, &format!("qft-{n}"));
    for target in (0..n).rev() {
        qc.h(target);
        for control in (0..target).rev() {
            let angle = PI / (1 << (target - control)) as f64;
            qc.cp(angle, control, target);
        }
    }
    for q in 0..n / 2 {
        qc.swap(q, n - 1 - q);
    }
    qc
}

/// Builds the QFT benchmark: prepare the Fourier encoding of `value`, apply
/// the inverse QFT, measure — a fault-free run yields `value` exactly.
///
/// # Panics
///
/// Panics if `n == 0` or `value >= 2^n`.
///
/// # Example
///
/// ```
/// use qufi_algos::qft_value_encoding;
/// use qufi_sim::Statevector;
///
/// let w = qft_value_encoding(4, 0b1010);
/// let sv = Statevector::from_circuit(&w.circuit).unwrap();
/// assert!((sv.measurement_distribution(&w.circuit).prob(0b1010) - 1.0).abs() < 1e-9);
/// ```
pub fn qft_value_encoding(n: usize, value: usize) -> Workload {
    assert!(n > 0, "QFT needs at least one qubit");
    assert!(value < (1 << n), "value does not fit in {n} qubits");
    let mut qc = QuantumCircuit::with_name(n, n, &format!("qft-{n}"));

    // Fourier-basis preparation: QFT|value⟩ = ⊗_j (|0⟩ + e^{2πi·value·2^j/2^n}|1⟩)/√2.
    for q in 0..n {
        qc.h(q);
        let angle = 2.0 * PI * (value as f64) * (1u64 << q) as f64 / (1u64 << n) as f64;
        // Reduce modulo 2π to keep parameters tidy.
        let angle = angle % (2.0 * PI);
        if angle.abs() > 1e-12 {
            qc.p(angle, q);
        }
    }
    qc.barrier(&[]);
    // Inverse QFT brings the encoding back to |value⟩.
    let inv = qft_circuit(n).inverse();
    qc.compose(&inv);
    qc.barrier(&[]);
    qc.measure_all();
    Workload::new(qc, vec![value], &format!("qft-{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_math::Complex;
    use qufi_sim::Statevector;

    #[test]
    fn qft_of_zero_is_uniform() {
        let qc = qft_circuit(3);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let p = sv.probabilities();
        for i in 0..8 {
            assert!((p.prob(i) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn qft_matches_dft_matrix_on_basis_states() {
        // QFT|x⟩ amplitudes must be e^{2πi·x·y/N}/√N.
        let n = 3;
        let dim = 1usize << n;
        for x in 0..dim {
            let mut qc = QuantumCircuit::new(n, 0);
            for b in 0..n {
                if (x >> b) & 1 == 1 {
                    qc.x(b);
                }
            }
            qc.compose(&qft_circuit(n));
            let sv = Statevector::from_circuit(&qc).unwrap();
            for y in 0..dim {
                let expect = Complex::cis(2.0 * PI * (x * y) as f64 / dim as f64)
                    .scale(1.0 / (dim as f64).sqrt());
                assert!(
                    sv.amp(y).approx_eq(expect, 1e-9),
                    "x={x} y={y}: {} vs {expect}",
                    sv.amp(y)
                );
            }
        }
    }

    #[test]
    fn qft_followed_by_inverse_is_identity() {
        let mut qc = QuantumCircuit::new(4, 0);
        qc.x(1).x(3);
        qc.compose(&qft_circuit(4));
        qc.compose(&qft_circuit(4).inverse());
        let sv = Statevector::from_circuit(&qc).unwrap();
        assert!((sv.probabilities().prob(0b1010) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn value_encoding_roundtrip_all_values_3q() {
        for value in 0..8 {
            let w = qft_value_encoding(3, value);
            let sv = Statevector::from_circuit(&w.circuit).unwrap();
            let dist = sv.measurement_distribution(&w.circuit);
            assert!(
                (dist.prob(value) - 1.0).abs() < 1e-9,
                "value {value}: p = {}",
                dist.prob(value)
            );
        }
    }

    #[test]
    fn value_encoding_scales_to_7_qubits() {
        let w = qft_value_encoding(7, 0b1010101);
        let sv = Statevector::from_circuit(&w.circuit).unwrap();
        assert!((sv.measurement_distribution(&w.circuit).prob(0b1010101) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gate_count_is_quadratic() {
        // n(n+1)/2 H+CP gates plus ⌊n/2⌋ swaps in the inverse QFT.
        let qc = qft_circuit(5);
        let counts = qc.gate_counts();
        let cp = counts.iter().find(|(g, _)| *g == "cp").unwrap().1;
        assert_eq!(cp, 10); // 5 choose 2
        let h = counts.iter().find(|(g, _)| *g == "h").unwrap().1;
        assert_eq!(h, 5);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let _ = qft_value_encoding(3, 8);
    }
}
