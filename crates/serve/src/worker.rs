//! Worker threads: claim a job, run the handler under a panic guard and
//! an optional wall-clock watchdog, record the outcome, retry with
//! deterministic backoff, and — if the worker thread itself dies — get
//! restarted by the supervisor on its own capped backoff schedule.

use crate::state::{Finish, Shared};
use crate::HandlerOutcome;
use qufi_core::retry::Backoff;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Base of the per-job retry schedule.
const RETRY_BASE: Duration = Duration::from_millis(50);
/// Cap of the per-job retry schedule.
const RETRY_CAP: Duration = Duration::from_secs(2);
/// Worker restarts before the supervisor gives the slot up.
const MAX_WORKER_RESTARTS: u32 = 5;

/// Sleeps `total` in small slices, bailing early when the daemon drains
/// — a backed-off retry must not delay shutdown.
fn interruptible_sleep(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.draining() {
        thread::sleep(Duration::from_millis(10).min(total));
    }
}

fn run_one(shared: &Shared, id: &str, manifest: &str, cancel: &Arc<AtomicBool>) -> Finish {
    // The watchdog flips the job's cancel flag at the deadline; `done`
    // retires the watchdog when the handler beats it.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = shared.cfg.job_timeout.map(|timeout| {
        let shared_id = id.to_string();
        let done = Arc::clone(&done);
        let deadline = Instant::now() + timeout;
        // The shared state outlives this bounded helper via the scope
        // below; scope guarantees join-before-return.
        (shared_id, done, deadline)
    });

    let dir = shared.store.job_dir(id);
    let span = qufi_obs::span("serve.job.run_ns");
    let outcome = thread::scope(|scope| {
        if let Some((watched_id, done, deadline)) = watchdog {
            scope.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    if Instant::now() >= deadline {
                        shared.flag_timeout(&watched_id);
                        return;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            });
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            shared.handler.run(manifest, &dir, cancel)
        }));
        done.store(true, Ordering::SeqCst);
        result
    });
    span.finish();

    match outcome {
        Ok(Ok(HandlerOutcome::Complete)) => Finish::Done,
        Ok(Ok(HandlerOutcome::Stopped)) => Finish::Stopped,
        Ok(Err(message)) => Finish::Failed(message),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "handler panicked".to_string());
            Finish::Failed(format!("panic: {message}"))
        }
    }
}

/// One worker: loop claiming jobs until drain. Job failures retry on a
/// deterministic backoff keyed by (job, strike) — two daemons replaying
/// the same failure history produce the same schedule.
fn worker_loop(shared: &Shared) {
    while let Some((record, cancel)) = shared.next_job() {
        let finish = run_one(shared, &record.id, &record.manifest, &cancel);
        if let Some(strikes) = shared.finish_job(&record.id, finish) {
            // Replay the schedule up to this strike: attempt N sleeps
            // the N-th delay of the job's deterministic schedule.
            let mut backoff =
                Backoff::new(RETRY_BASE, RETRY_CAP, shared.cfg.max_strikes, &record.id);
            let mut delay = RETRY_BASE;
            for _ in 0..strikes {
                if let Some(d) = backoff.next_delay() {
                    delay = d;
                }
            }
            interruptible_sleep(shared, delay);
            shared.readmit(&record.id);
        }
        qufi_obs::flush();
    }
    qufi_obs::flush();
}

/// Supervises one worker slot: respawns the thread if it dies (it
/// shouldn't — handler panics are caught inside — but the daemon must
/// outlive its own bugs), on a capped deterministic backoff. Returns
/// when the worker exits cleanly (drain) or the restart budget is
/// spent.
pub(crate) fn supervise_slot(shared: &Arc<Shared>, slot: usize) {
    let mut backoff = Backoff::new(
        RETRY_BASE,
        RETRY_CAP,
        MAX_WORKER_RESTARTS,
        &format!("worker-{slot}"),
    );
    loop {
        let worker_shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name(format!("qufi-serve-worker-{slot}"))
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn worker thread");
        match handle.join() {
            Ok(()) => return,
            Err(_) => {
                qufi_obs::add("serve.worker.restarts", 1);
                match backoff.next_delay() {
                    Some(delay) => {
                        qufi_obs::log::warn(&format!(
                            "serve: worker {slot} died; restarting in {delay:?}"
                        ));
                        interruptible_sleep(shared, delay);
                        if shared.draining() {
                            return;
                        }
                    }
                    None => {
                        qufi_obs::log::error(&format!(
                            "serve: worker {slot} exceeded its restart budget; slot retired"
                        ));
                        return;
                    }
                }
            }
        }
    }
}
