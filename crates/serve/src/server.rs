//! The TCP front end: a nonblocking accept loop feeding per-connection
//! threads, each reading newline-delimited JSON frames under a byte cap
//! and a read deadline. Degradation is graded, never silent:
//!
//! * malformed frame → `bad_request`, connection stays open;
//! * frame over the cap → `too_large`, connection closes (the stream
//!   position is unrecoverable);
//! * read deadline hit mid-frame (slow loris) → `timeout`, close;
//! * EOF mid-frame (torn frame) → counted, closed quietly;
//! * connection bound hit → `overloaded`, close;
//! * any of the above on one connection never perturbs another.

use crate::state::Shared;
use crate::store::{atomic_write, Store};
use crate::worker;
use crate::{protocol, Config, JobHandler};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How often the accept loop re-checks the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running daemon. Construct with [`Server::start`], block on
/// [`Server::wait`]; a `shutdown` protocol op ends the wait.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers the durable queue, and starts accept + worker
    /// threads. The bound address (useful with port 0) is published to
    /// `<dir>/serve.addr` before this returns.
    ///
    /// # Errors
    ///
    /// Bind/listen and state-directory failures.
    pub fn start(cfg: Config, handler: Arc<dyn JobHandler>) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.dir)?;
        let store = Store::open(&cfg.dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        atomic_write(&cfg.dir.join("serve.addr"), addr.to_string().as_bytes())?;
        qufi_obs::log::info(&format!("serve: listening on {addr}"));

        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared::recover(cfg, store, handler));

        let mut worker_threads = Vec::with_capacity(workers);
        for slot in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(
                thread::Builder::new()
                    .name(format!("qufi-serve-supervisor-{slot}"))
                    .spawn(move || worker::supervise_slot(&shared, slot))
                    .expect("spawn supervisor thread"),
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("qufi-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            shared,
            accept_thread,
            worker_threads,
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` op drains the daemon: the accept loop
    /// exits, workers finish (or checkpoint) their jobs, and a final
    /// telemetry snapshot lands in `<dir>/metrics.json`. The durable
    /// queue keeps whatever was still pending.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves the right to report
    /// final-persistence problems.
    pub fn wait(self) -> io::Result<()> {
        let _ = self.accept_thread.join();
        for handle in self.worker_threads {
            let _ = handle.join();
        }
        qufi_obs::flush();
        let snapshot = qufi_obs::snapshot();
        let _ = atomic_write(
            &self.shared.cfg.dir.join("metrics.json"),
            snapshot.to_json().as_bytes(),
        );
        qufi_obs::log::info("serve: drained; exiting");
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining() {
            qufi_obs::flush();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !shared.conn_acquire() {
                    // Shed at the door: answer, then close. Writes are
                    // best-effort — the client may already be gone.
                    shed_connection(stream, shared);
                    continue;
                }
                let conn_shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("qufi-serve-conn".to_string())
                    .spawn(move || {
                        handle_conn(stream, &conn_shared);
                        conn_shared.conn_release();
                        qufi_obs::flush();
                    });
                if let Err(e) = spawned {
                    // Spawn failure (EAGAIN under resource exhaustion)
                    // drops the closure — and the stream with it. The
                    // slot must come back or conn_cap leaks away one
                    // failure at a time until the daemon sheds everyone.
                    shared.conn_release();
                    qufi_obs::add("serve.conn.spawn_failed", 1);
                    qufi_obs::log::warn(&format!("serve: connection thread spawn failed: {e}"));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn shed_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    let _ = stream.write_all(
        protocol::error("overloaded", "connection limit reached; retry later").as_bytes(),
    );
}

/// One frame read under the cap and the deadline.
enum Frame {
    Line(String),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Over the byte cap.
    TooLarge,
    /// Read deadline expired mid-frame.
    TimedOut,
    /// EOF (or transport error) mid-frame.
    Torn,
}

fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>, cap: usize) -> Frame {
    buf.clear();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Torn
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Frame::Line(String::from_utf8_lossy(buf).into_owned());
                }
                if buf.len() >= cap {
                    return Frame::TooLarge;
                }
                buf.push(byte[0]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Frame::TimedOut;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Frame::Torn,
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    // One-line replies must not wait out Nagle + delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let response = match read_frame(&mut stream, &mut buf, shared.cfg.max_request) {
            Frame::Eof => return,
            Frame::Torn => {
                qufi_obs::add("serve.conn.torn", 1);
                return;
            }
            Frame::TimedOut => {
                qufi_obs::add("serve.conn.timeout", 1);
                let _ = stream
                    .write_all(protocol::error("timeout", "read deadline expired").as_bytes());
                return;
            }
            Frame::TooLarge => {
                qufi_obs::add("serve.req.too_large", 1);
                let _ = stream.write_all(
                    protocol::error(
                        "too_large",
                        &format!("request exceeds {} bytes", shared.cfg.max_request),
                    )
                    .as_bytes(),
                );
                // Swallow (bounded) what the client already sent before
                // closing: closing with unread bytes pending resets the
                // connection and can destroy the response in flight.
                discard_rest(&mut stream, shared.cfg.max_request.saturating_mul(4));
                return;
            }
            Frame::Line(line) => match protocol::parse_request(&line) {
                Err(message) => {
                    qufi_obs::add("serve.req.bad", 1);
                    protocol::error("bad_request", &message)
                }
                Ok(request) => dispatch(shared, request),
            },
        };
        if stream.write_all(response.as_bytes()).is_err() {
            return;
        }
    }
}

/// Reads and discards up to `budget` bytes (or until EOF/deadline) so a
/// rejected connection closes without racing the client's final read.
fn discard_rest(stream: &mut TcpStream, budget: usize) {
    let mut sink = [0u8; 1024];
    let mut remaining = budget;
    while remaining > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(n) => remaining = remaining.saturating_sub(n),
        }
    }
}

fn dispatch(shared: &Arc<Shared>, request: protocol::Request) -> String {
    use protocol::Request;
    match request {
        Request::Submit { manifest } => shared.submit(&manifest),
        Request::Status { job } => shared.status(&job),
        Request::Cancel { job } => shared.cancel(&job),
        Request::List => shared.list(),
        Request::Health => shared.health(),
        Request::Shutdown { drain } => shared.shutdown(drain),
    }
}
