//! # qufi-serve — the crash-safe multi-tenant campaign daemon
//!
//! A line-delimited JSON-over-TCP service that accepts campaign
//! manifests, runs them through a pluggable [`JobHandler`], and survives
//! every failure mode the batch CLI already survives — plus the ones a
//! long-lived daemon adds:
//!
//! * **Durable queue.** Every accepted job is persisted (atomic
//!   write-then-rename) before the client sees `ok`. A daemon killed
//!   mid-run recovers its queue on restart and resumes exactly where the
//!   checkpoints left off — the handler's artifacts are byte-identical
//!   to an uninterrupted run (see the batch runner's determinism
//!   contract).
//! * **Idempotent submission.** Jobs are content-addressed by a
//!   [`SeedHasher`](qufi_core::engine::SeedHasher) hash of the canonical
//!   manifest; resubmitting a queued/running/finished campaign returns
//!   the existing job instead of forking a duplicate.
//! * **Backpressure, not buffering.** The admission queue and the
//!   connection count are bounded; past the bound, clients get a
//!   structured `overloaded` rejection immediately. Memory use does not
//!   scale with abuse.
//! * **Deadlines everywhere.** Sockets carry read/write timeouts (a
//!   slow-loris client times out; a torn frame is dropped without
//!   wedging a thread), requests have a byte cap, and jobs have an
//!   optional wall-clock timeout that cancels cooperatively — leaving a
//!   resumable checkpoint, not a corpse.
//! * **Supervision.** Handler panics are caught; a job that fails
//!   [`Config::max_strikes`] times is quarantined as *poisoned* rather
//!   than crash-looping the daemon. Worker threads that die are
//!   restarted on a deterministic capped backoff
//!   ([`qufi_core::retry::Backoff`]).
//! * **Graceful drain.** Shutdown stops admissions, finishes (or, in
//!   `now` mode, checkpoints) in-flight jobs, persists the rest of the
//!   queue, and exits cleanly.
//!
//! The daemon is generic over the work it runs: [`JobHandler`]
//! abstracts "canonicalize a manifest" and "run a campaign under a
//! directory with a cancel flag", so the crate's own tests drive the
//! full protocol/queue/supervision surface with a millisecond-scale
//! stub while the `qufi` CLI plugs in the real checkpointed campaign
//! runner. See `protocol` for the wire format.

pub mod client;
pub mod protocol;
mod server;
mod state;
pub mod store;
mod worker;

pub use server::Server;
pub use store::{JobRecord, JobState};

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Daemon tuning. Every bound is explicit — the failure behavior at
/// each limit is a structured error, never an unbounded buffer.
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address (`127.0.0.1:7077`; port 0 binds an ephemeral port,
    /// published in `<dir>/serve.addr`).
    pub addr: String,
    /// Service state directory: job records, campaign directories, the
    /// bound-address file and `metrics.json` live here.
    pub dir: PathBuf,
    /// Worker threads executing jobs (minimum 1).
    pub workers: usize,
    /// Admission-queue bound; submissions past it are shed with
    /// `overloaded`.
    pub queue_cap: usize,
    /// Concurrent-connection bound; connections past it are answered
    /// with `overloaded` and closed.
    pub conn_cap: usize,
    /// Request line byte cap; longer frames get `too_large`.
    pub max_request: usize,
    /// Socket read/write deadline — the slow-loris bound.
    pub io_timeout: Duration,
    /// Per-job wall-clock timeout (`None` = unbounded). A timed-out job
    /// is canceled cooperatively and marked failed; its checkpoints
    /// remain resumable.
    pub job_timeout: Option<Duration>,
    /// Failures (errors or panics) before a job is quarantined as
    /// poisoned.
    pub max_strikes: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:7077".to_string(),
            dir: PathBuf::from("qufi-serve"),
            workers: 2,
            queue_cap: 64,
            conn_cap: 32,
            max_request: 256 * 1024,
            io_timeout: Duration::from_secs(10),
            job_timeout: None,
            max_strikes: 3,
        }
    }
}

/// How a handler's run ended (errors are the `Err` channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerOutcome {
    /// The campaign ran to completion; artifacts are exported.
    Complete,
    /// The cancel flag stopped the run early; checkpoints are resumable.
    Stopped,
}

/// The work the daemon schedules. Implementations must be cheap to
/// share across threads; `run` is called from worker threads and must
/// honor `cancel` promptly (the runner's cooperative-cancellation flag).
pub trait JobHandler: Send + Sync + 'static {
    /// Validates `manifest` and returns `(canonical_text, display_name)`.
    /// The canonical text is the daemon's content-address input: two
    /// manifests that canonicalize identically are the same job.
    ///
    /// # Errors
    ///
    /// A human-readable validation message (surfaced to the client as
    /// an `invalid_manifest` rejection).
    fn canonicalize(&self, manifest: &str) -> Result<(String, String), String>;

    /// Runs (or resumes) the campaign for `manifest` under `dir`,
    /// stopping early when `cancel` flips true.
    ///
    /// # Errors
    ///
    /// A human-readable failure message; the daemon counts it as a
    /// strike toward quarantine.
    fn run(
        &self,
        manifest: &str,
        dir: &Path,
        cancel: &Arc<AtomicBool>,
    ) -> Result<HandlerOutcome, String>;
}

/// Content address of a canonical manifest: FNV-1a (the workspace's
/// [`SeedHasher`](qufi_core::engine::SeedHasher)) over its bytes,
/// rendered as a filesystem-safe id. FNV is not collision-resistant,
/// so the daemon never trusts the id alone: a submission whose id hits
/// an existing job with *different* canonical text is rejected as a
/// collision rather than deduped onto another tenant's job.
#[must_use]
pub fn job_id(canonical_manifest: &str) -> String {
    let h = qufi_core::engine::SeedHasher::new()
        .mix_bytes(canonical_manifest.as_bytes())
        .finish();
    format!("j{h:016x}")
}
