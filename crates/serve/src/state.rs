//! The daemon's shared state machine: the bounded admission queue, the
//! job table, the running set with per-job cancel flags, and the drain
//! protocol. One mutex guards it all — every operation here is a few
//! map lookups plus at most one small atomic file write, so the lock is
//! never held across campaign work or socket I/O.

use crate::protocol;
use crate::store::{JobRecord, JobState, Store};
use crate::{job_id, Config, JobHandler};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a running job's cancel flag was flipped — decides its terminal
/// state when the handler returns `Stopped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopCause {
    /// A client asked; the job ends `canceled`.
    Client,
    /// The wall-clock watchdog fired; the job ends `failed`.
    Timeout,
    /// Shutdown-now; the job goes back to `queued` (persisted, not
    /// re-admitted — the next daemon start resumes it).
    Drain,
}

struct RunningJob {
    cancel: Arc<AtomicBool>,
    cause: Option<StopCause>,
}

pub(crate) struct Inner {
    jobs: HashMap<String, JobRecord>,
    queue: VecDeque<String>,
    running: HashMap<String, RunningJob>,
    draining: bool,
    next_seq: u64,
    conns: usize,
}

/// How a worker's attempt at a job ended.
pub(crate) enum Finish {
    /// Handler completed the campaign.
    Done,
    /// Handler stopped on the cancel flag.
    Stopped,
    /// Handler errored or panicked.
    Failed(String),
}

pub(crate) struct Shared {
    pub(crate) cfg: Config,
    pub(crate) store: Store,
    pub(crate) handler: Arc<dyn JobHandler>,
    inner: Mutex<Inner>,
    /// Signals queue arrivals and drain to idle workers.
    work: Condvar,
}

impl Shared {
    /// Builds the state and replays the durable store: every job that
    /// was queued or mid-run when the last daemon died is re-admitted,
    /// in original submission order.
    pub(crate) fn recover(cfg: Config, store: Store, handler: Arc<dyn JobHandler>) -> Shared {
        let (records, skipped) = store.load_all().unwrap_or((Vec::new(), 0));
        if skipped > 0 {
            qufi_obs::add("serve.store.skipped", skipped as u64);
            qufi_obs::log::warn(&format!(
                "serve: skipped {skipped} unreadable job record(s)"
            ));
        }
        let mut jobs = HashMap::new();
        let mut queue = VecDeque::new();
        let mut next_seq = 0u64;
        let mut recovered = 0u64;
        for mut record in records {
            next_seq = next_seq.max(record.seq + 1);
            if matches!(record.state, JobState::Queued | JobState::Running) {
                if record.state == JobState::Running {
                    // The previous daemon died mid-run; its checkpoints
                    // make the re-run a resume, not a restart.
                    record.state = JobState::Queued;
                    let _ = store.save(&record);
                }
                queue.push_back(record.id.clone());
                recovered += 1;
            }
            jobs.insert(record.id.clone(), record);
        }
        if recovered > 0 {
            qufi_obs::add("serve.jobs.recovered", recovered);
            qufi_obs::log::info(&format!("serve: re-admitted {recovered} job(s) from disk"));
        }
        Shared {
            cfg,
            store,
            handler,
            inner: Mutex::new(Inner {
                jobs,
                queue,
                running: HashMap::new(),
                draining: false,
                next_seq,
                conns: 0,
            }),
            work: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- client operations (each returns a wire-ready response line) ----

    /// Submit: canonicalize → content-address → dedup or admit.
    pub(crate) fn submit(&self, manifest: &str) -> String {
        let (canonical, name) = match self.handler.canonicalize(manifest) {
            Ok(pair) => pair,
            Err(msg) => {
                qufi_obs::add("serve.submit.rejected", 1);
                return protocol::error("invalid_manifest", &msg);
            }
        };
        let id = job_id(&canonical);
        let mut inner = self.lock();
        if inner.draining {
            return protocol::error("draining", "daemon is shutting down; not admitting jobs");
        }
        if let Some(existing) = inner.jobs.get(&id).cloned() {
            // The id is a 64-bit non-cryptographic hash; two *different*
            // manifests colliding onto one id must not silently alias —
            // that would hand this submitter another tenant's job (and
            // its job_dir). Dedup only when the stored canonical text
            // matches byte-for-byte.
            if existing.manifest != canonical {
                qufi_obs::add("serve.submit.collision", 1);
                qufi_obs::log::error(&format!("serve: job-id collision on {id}"));
                return protocol::error(
                    "internal",
                    "job id collision: a different manifest already owns this id",
                );
            }
            // Terminal-but-retryable states re-enqueue on explicit
            // resubmission; everything else is an idempotent hit.
            if matches!(existing.state, JobState::Canceled | JobState::Failed) {
                if inner.queue.len() >= self.cfg.queue_cap {
                    qufi_obs::add("serve.submit.shed", 1);
                    return protocol::error("overloaded", "admission queue is full; retry later");
                }
                // Persist first, mutate in-memory state only on success
                // — a failed save must not leave a `queued` record that
                // was never enqueued (it would report queued forever).
                let mut updated = existing;
                updated.state = JobState::Queued;
                updated.fails = 0;
                updated.error = None;
                if let Err(e) = self.store.save(&updated) {
                    return protocol::error("internal", &format!("persist failed: {e}"));
                }
                let response = protocol::ok_submit(&updated, false);
                inner.jobs.insert(id.clone(), updated);
                inner.queue.push_back(id);
                qufi_obs::add("serve.submit.readmitted", 1);
                drop(inner);
                self.work.notify_one();
                return response;
            }
            qufi_obs::add("serve.submit.deduped", 1);
            return protocol::ok_submit(&existing, true);
        }
        if inner.queue.len() >= self.cfg.queue_cap {
            qufi_obs::add("serve.submit.shed", 1);
            return protocol::error("overloaded", "admission queue is full; retry later");
        }
        let record = JobRecord {
            id: id.clone(),
            name,
            state: JobState::Queued,
            manifest: canonical,
            fails: 0,
            error: None,
            seq: inner.next_seq,
        };
        // Durability before acknowledgment: the client's `ok` means the
        // job survives a daemon crash from this point on.
        if let Err(e) = self.store.save(&record) {
            return protocol::error("internal", &format!("persist failed: {e}"));
        }
        inner.next_seq += 1;
        let response = protocol::ok_submit(&record, false);
        inner.jobs.insert(id.clone(), record);
        inner.queue.push_back(id);
        qufi_obs::add("serve.submit.accepted", 1);
        drop(inner);
        self.work.notify_one();
        response
    }

    pub(crate) fn status(&self, job: &str) -> String {
        match self.lock().jobs.get(job) {
            Some(record) => protocol::ok_job(record),
            None => protocol::error("unknown_job", &format!("no job {job:?}")),
        }
    }

    pub(crate) fn list(&self) -> String {
        let inner = self.lock();
        let mut records: Vec<JobRecord> = inner.jobs.values().cloned().collect();
        records.sort_by_key(|r| r.seq);
        protocol::ok_list(&records)
    }

    /// Cancel: a queued job is withdrawn immediately; a running job is
    /// stopped cooperatively (poll `status` to watch it land on
    /// `canceled`); terminal jobs are a no-op.
    pub(crate) fn cancel(&self, job: &str) -> String {
        let mut inner = self.lock();
        let Some(record) = inner.jobs.get(job).cloned() else {
            return protocol::error("unknown_job", &format!("no job {job:?}"));
        };
        match record.state {
            JobState::Queued => {
                inner.queue.retain(|id| id != job);
                let record = inner.jobs.get_mut(job).expect("present");
                record.state = JobState::Canceled;
                let _ = self.store.save(record);
                qufi_obs::add("serve.jobs.canceled", 1);
                protocol::ok_job(record)
            }
            JobState::Running => {
                if let Some(running) = inner.running.get_mut(job) {
                    if running.cause.is_none() {
                        running.cause = Some(StopCause::Client);
                    }
                    running.cancel.store(true, Ordering::SeqCst);
                }
                protocol::ok_job(&record)
            }
            _ => protocol::ok_job(&record),
        }
    }

    pub(crate) fn health(&self) -> String {
        let inner = self.lock();
        let done = inner
            .jobs
            .values()
            .filter(|r| r.state == JobState::Done)
            .count();
        protocol::ok_health(
            if inner.draining {
                "draining"
            } else {
                "running"
            },
            inner.queue.len(),
            inner.running.len(),
            done,
            self.cfg.queue_cap,
        )
    }

    /// Shutdown: flips draining (idle workers exit, admissions refuse).
    /// `drain = false` additionally cancels running jobs with the
    /// `Drain` cause, so they checkpoint and return to `queued`.
    pub(crate) fn shutdown(&self, drain: bool) -> String {
        let mut inner = self.lock();
        inner.draining = true;
        if !drain {
            for running in inner.running.values_mut() {
                if running.cause.is_none() {
                    running.cause = Some(StopCause::Drain);
                }
                running.cancel.store(true, Ordering::SeqCst);
            }
        }
        drop(inner);
        self.work.notify_all();
        protocol::ok_shutdown(drain)
    }

    // ---- worker-side operations ----

    /// Blocks until a job is available (returned with its fresh cancel
    /// flag) or the daemon is draining (`None` — the worker exits;
    /// still-queued jobs stay persisted for the next start).
    pub(crate) fn next_job(&self) -> Option<(JobRecord, Arc<AtomicBool>)> {
        let mut inner = self.lock();
        loop {
            if inner.draining {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let record = inner.jobs.get_mut(&id).expect("queued job has a record");
                record.state = JobState::Running;
                let _ = self.store.save(record);
                let record = record.clone();
                let cancel = Arc::new(AtomicBool::new(false));
                inner.running.insert(
                    id,
                    RunningJob {
                        cancel: Arc::clone(&cancel),
                        cause: None,
                    },
                );
                return Some((record, cancel));
            }
            inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The wall-clock watchdog's trigger: flips the job's cancel flag
    /// with the `Timeout` cause (unless a client got there first).
    pub(crate) fn flag_timeout(&self, job: &str) {
        let mut inner = self.lock();
        if let Some(running) = inner.running.get_mut(job) {
            if running.cause.is_none() {
                running.cause = Some(StopCause::Timeout);
            }
            running.cancel.store(true, Ordering::SeqCst);
        }
    }

    /// Records the outcome of one attempt and persists the new state.
    /// Returns `Some(strike_count)` when the job should be retried after
    /// backoff — the caller sleeps, then calls [`Shared::readmit`].
    pub(crate) fn finish_job(&self, job: &str, finish: Finish) -> Option<u32> {
        let mut inner = self.lock();
        let cause = inner.running.remove(job).and_then(|r| r.cause);
        let max_strikes = self.cfg.max_strikes;
        let draining = inner.draining;
        let record = inner.jobs.get_mut(job).expect("running job has a record");
        let mut retry = None;
        let mut requeue = false;
        match finish {
            Finish::Done => {
                record.state = JobState::Done;
                record.error = None;
                qufi_obs::add("serve.jobs.done", 1);
            }
            Finish::Stopped => match cause {
                Some(StopCause::Client) => {
                    record.state = JobState::Canceled;
                    qufi_obs::add("serve.jobs.canceled", 1);
                }
                Some(StopCause::Timeout) => {
                    record.state = JobState::Failed;
                    record.error = Some("wall-clock timeout; checkpoints kept".to_string());
                    qufi_obs::add("serve.jobs.timeout", 1);
                }
                // Drain: back to the durable queue, but not the
                // in-memory one — we are exiting.
                Some(StopCause::Drain) => {
                    record.state = JobState::Queued;
                    qufi_obs::add("serve.jobs.drained", 1);
                }
                // A stop nobody asked for (handler returned `Stopped`
                // with the cancel flag untouched). Unless the daemon is
                // actually exiting, the job must go back on the live
                // queue too, or it reports `queued` until a restart.
                None => {
                    record.state = JobState::Queued;
                    if draining {
                        qufi_obs::add("serve.jobs.drained", 1);
                    } else {
                        requeue = true;
                        qufi_obs::add("serve.jobs.requeued", 1);
                    }
                }
            },
            Finish::Failed(message) => {
                record.fails += 1;
                record.error = Some(message);
                if record.fails >= max_strikes {
                    record.state = JobState::Poisoned;
                    qufi_obs::add("serve.jobs.poisoned", 1);
                    qufi_obs::log::warn(&format!(
                        "serve: job {} poisoned after {} strikes",
                        record.id, record.fails
                    ));
                } else {
                    record.state = JobState::Queued;
                    retry = Some(record.fails);
                    qufi_obs::add("serve.jobs.retried", 1);
                }
            }
        }
        let _ = self.store.save(record);
        if requeue && !inner.queue.iter().any(|id| id == job) {
            inner.queue.push_back(job.to_string());
        }
        drop(inner);
        // Wake drain-waiters (and siblings) to re-check the world.
        self.work.notify_all();
        retry
    }

    /// Puts a backed-off job back on the in-memory queue (no-op while
    /// draining — the durable record already says `queued`).
    pub(crate) fn readmit(&self, job: &str) {
        let mut inner = self.lock();
        if !inner.draining
            && inner
                .jobs
                .get(job)
                .is_some_and(|r| r.state == JobState::Queued)
            && !inner.queue.iter().any(|id| id == job)
        {
            inner.queue.push_back(job.to_string());
            drop(inner);
            self.work.notify_one();
        }
    }

    // ---- connection accounting and lifecycle flags ----

    /// Admits a connection against the bound; `false` = shed it.
    pub(crate) fn conn_acquire(&self) -> bool {
        let mut inner = self.lock();
        if inner.conns >= self.cfg.conn_cap {
            qufi_obs::add("serve.conn.shed", 1);
            false
        } else {
            inner.conns += 1;
            qufi_obs::add("serve.conn.accepted", 1);
            true
        }
    }

    pub(crate) fn conn_release(&self) {
        self.lock().conns -= 1;
    }

    pub(crate) fn draining(&self) -> bool {
        self.lock().draining
    }
}
