//! Durable job records: one JSON file per job under `<dir>/jobs/`,
//! written atomically (tmp + rename, optional fsync via `QUFI_FSYNC=1`
//! — the same durability knob the checkpoint store honors). The record
//! is the daemon's recovery unit: a restarted daemon rebuilds its whole
//! queue from these files, in submission order, and the campaign
//! directory next to each record carries the checkpoints that make the
//! resumed run byte-identical.

use qufi_obs::json::{self, Value};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Lifecycle of a job. `Queued` and `Running` are the live states a
/// restart re-admits; the rest are terminal (though `Canceled` and
/// `Failed` re-enqueue on explicit resubmission — only `Poisoned` stays
/// quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Ran to completion; artifacts exported.
    Done,
    /// Canceled by a client; checkpoints resumable.
    Canceled,
    /// Failed terminally (e.g. wall-clock timeout); checkpoints kept.
    Failed,
    /// Quarantined after repeated failures; never auto-retried.
    Poisoned,
}

impl JobState {
    /// Wire/storage keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Canceled => "canceled",
            JobState::Failed => "failed",
            JobState::Poisoned => "poisoned",
        }
    }

    /// Inverse of [`JobState::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "canceled" => JobState::Canceled,
            "failed" => JobState::Failed,
            "poisoned" => JobState::Poisoned,
            _ => return None,
        })
    }
}

/// One job's durable state. Everything the daemon needs to resume or
/// explain the job lives here; the campaign's own checkpoints live in
/// the job directory next to the record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Content address of the canonical manifest ([`crate::job_id`]).
    pub id: String,
    /// Human display name (from the manifest).
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// The canonical manifest text (what the handler runs).
    pub manifest: String,
    /// Failure strikes accumulated toward quarantine.
    pub fails: u32,
    /// Last failure message, if any.
    pub error: Option<String>,
    /// Admission order — recovery re-enqueues ascending.
    pub seq: u64,
}

impl JobRecord {
    fn to_json(&self) -> String {
        let error = match &self.error {
            Some(e) => json::quote(e),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"name\":{},\"state\":{},\"manifest\":{},\"fails\":{},\"error\":{},\"seq\":{}}}\n",
            json::quote(&self.id),
            json::quote(&self.name),
            json::quote(self.state.as_str()),
            json::quote(&self.manifest),
            self.fails,
            error,
            self.seq,
        )
    }

    fn from_json(v: &Value) -> Option<JobRecord> {
        Some(JobRecord {
            id: v.get("id")?.as_str()?.to_string(),
            name: v.get("name")?.as_str()?.to_string(),
            state: JobState::parse(v.get("state")?.as_str()?)?,
            manifest: v.get("manifest")?.as_str()?.to_string(),
            fails: v.get("fails")?.as_u64()? as u32,
            error: match v.get("error") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

/// The record directory. All writes are atomic; a crash between any two
/// syscalls leaves either the old record or the new one, never a torn
/// file.
#[derive(Debug)]
pub struct Store {
    jobs_dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store under the service directory.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(service_dir: &Path) -> io::Result<Store> {
        let jobs_dir = service_dir.join("jobs");
        fs::create_dir_all(&jobs_dir)?;
        Ok(Store { jobs_dir })
    }

    /// The campaign directory for a job (the handler's working dir).
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.jobs_dir.join(id)
    }

    /// Persists one record atomically.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn save(&self, record: &JobRecord) -> io::Result<()> {
        let path = self.jobs_dir.join(format!("{}.json", record.id));
        atomic_write(&path, record.to_json().as_bytes())
    }

    /// Loads every parseable record, sorted by admission order. Files
    /// that fail to parse are skipped (counted by the caller via the
    /// returned skip count) — a half-corrupted store must not brick the
    /// daemon.
    ///
    /// # Errors
    ///
    /// Directory enumeration failures.
    pub fn load_all(&self) -> io::Result<(Vec<JobRecord>, usize)> {
        let mut records = Vec::new();
        let mut skipped = 0usize;
        for entry in fs::read_dir(&self.jobs_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| json::parse(text.trim()).ok())
                .and_then(|v| JobRecord::from_json(&v));
            match parsed {
                Some(r) => records.push(r),
                None => skipped += 1,
            }
        }
        records.sort_by_key(|r| r.seq);
        Ok((records, skipped))
    }
}

/// Write-then-rename, with optional fsync under `QUFI_FSYNC=1` — the
/// same recipe (and knob) as the CLI's checkpoint writes, re-stated
/// here because depending on the CLI would invert the crate stack.
pub(crate) fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        if std::env::var_os("QUFI_FSYNC").is_some_and(|v| v == "1") {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qufi-serve-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(id: &str, seq: u64, state: JobState) -> JobRecord {
        JobRecord {
            id: id.to_string(),
            name: "demo".to_string(),
            state,
            manifest: "[campaign]\nname = \"demo\"\n".to_string(),
            fails: 1,
            error: Some("boom \"quoted\"\nline2".to_string()),
            seq,
        }
    }

    #[test]
    fn records_round_trip_in_seq_order() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        store.save(&record("b", 2, JobState::Running)).unwrap();
        store.save(&record("a", 1, JobState::Done)).unwrap();
        let (loaded, skipped) = store.load_all().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], record("a", 1, JobState::Done));
        assert_eq!(loaded[1], record("b", 2, JobState::Running));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_records_are_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        store.save(&record("ok", 1, JobState::Queued)).unwrap();
        fs::write(dir.join("jobs").join("bad.json"), b"{torn").unwrap();
        let (loaded, skipped) = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(skipped, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn states_round_trip_keywords() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Canceled,
            JobState::Failed,
            JobState::Poisoned,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("zombie"), None);
    }
}
