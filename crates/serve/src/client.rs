//! A small blocking protocol client — what the CLI's `qufi serve`
//! helpers and the robustness tests speak through. One request per
//! call: write a frame, read the one-line JSON reply.

use qufi_obs::json::{self, Value};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with `timeout` applied to connect, reads and writes.
    ///
    /// # Errors
    ///
    /// Resolution, connect, or socket-option failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Request/response over tiny frames: Nagle + delayed ACK would
        // add tens of milliseconds per round trip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one raw frame (newline appended) and parses the reply.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or an unparseable reply.
    pub fn request_raw(&mut self, frame: &str) -> io::Result<Value> {
        // One write per request: a separate newline write would sit in
        // a second TCP segment behind the first one's delayed ACK.
        let mut framed = String::with_capacity(frame.len() + 1);
        framed.push_str(frame);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes())?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// `submit` — returns the reply object.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn submit(&mut self, manifest: &str) -> io::Result<Value> {
        self.request_raw(&format!(
            "{{\"op\":\"submit\",\"manifest\":{}}}",
            json::quote(manifest)
        ))
    }

    /// `status` for one job.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn status(&mut self, job: &str) -> io::Result<Value> {
        self.request_raw(&format!(
            "{{\"op\":\"status\",\"job\":{}}}",
            json::quote(job)
        ))
    }

    /// `cancel` for one job.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn cancel(&mut self, job: &str) -> io::Result<Value> {
        self.request_raw(&format!(
            "{{\"op\":\"cancel\",\"job\":{}}}",
            json::quote(job)
        ))
    }

    /// `list` all jobs.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn list(&mut self) -> io::Result<Value> {
        self.request_raw("{\"op\":\"list\"}")
    }

    /// `health` probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn health(&mut self) -> io::Result<Value> {
        self.request_raw("{\"op\":\"health\"}")
    }

    /// `shutdown` (drain or now).
    ///
    /// # Errors
    ///
    /// See [`Client::request_raw`].
    pub fn shutdown(&mut self, drain: bool) -> io::Result<Value> {
        self.request_raw(&format!(
            "{{\"op\":\"shutdown\",\"mode\":{}}}",
            json::quote(if drain { "drain" } else { "now" })
        ))
    }

    /// Polls `status` until the job reaches a state in `terminal` or
    /// `deadline` elapses; returns the last reply.
    ///
    /// # Errors
    ///
    /// Transport failures, or a timeout with the job still live.
    pub fn wait_for(
        &mut self,
        job: &str,
        terminal: &[&str],
        deadline: Duration,
    ) -> io::Result<Value> {
        let end = std::time::Instant::now() + deadline;
        loop {
            let reply = self.status(job)?;
            let state = reply.get("state").and_then(Value::as_str).unwrap_or("");
            if terminal.contains(&state) {
                return Ok(reply);
            }
            if std::time::Instant::now() >= end {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job} still {state:?} after {deadline:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}
