//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests name an `op`:
//!
//! ```json
//! {"op":"submit","manifest":"[campaign]\n..."}
//! {"op":"status","job":"j0123456789abcdef"}
//! {"op":"cancel","job":"j0123456789abcdef"}
//! {"op":"list"}
//! {"op":"health"}
//! {"op":"shutdown","mode":"drain"}
//! ```
//!
//! Responses are `{"ok":true,...}` or a structured rejection
//! `{"ok":false,"error":{"kind":"...","message":"..."}}`. Error kinds
//! are a closed vocabulary clients can switch on:
//!
//! | kind               | meaning                                        |
//! |--------------------|------------------------------------------------|
//! | `bad_request`      | unparseable frame or unknown op (conn stays up)|
//! | `too_large`        | frame exceeded the byte cap (conn closes)      |
//! | `timeout`          | read deadline expired mid-frame (conn closes)  |
//! | `overloaded`       | queue or connection bound hit — retry later    |
//! | `draining`         | daemon is shutting down; not admitting         |
//! | `invalid_manifest` | manifest failed validation                     |
//! | `unknown_job`      | no such job id                                 |
//! | `internal`         | daemon-side fault (counted, never a panic)     |

use crate::store::JobRecord;
use qufi_obs::json::{self, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit (or idempotently re-submit) a manifest.
    Submit {
        /// Manifest text (TOML, validated by the handler).
        manifest: String,
    },
    /// Query one job.
    Status {
        /// Job id.
        job: String,
    },
    /// Cancel one job (queued → canceled; running → cooperative stop).
    Cancel {
        /// Job id.
        job: String,
    },
    /// Enumerate all known jobs.
    List,
    /// Daemon liveness + load snapshot. Must answer even at full load.
    Health,
    /// Stop the daemon. `drain` finishes in-flight work; `now`
    /// checkpoints it.
    Shutdown {
        /// `true` = drain, `false` = now.
        drain: bool,
    },
}

/// Parses one request line. `Err` is a client-facing message for a
/// `bad_request` rejection — parsing never panics, whatever the bytes.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing \"op\" field")?;
    let field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op {op:?} requires a string {name:?} field"))
    };
    match op {
        "submit" => Ok(Request::Submit {
            manifest: field("manifest")?,
        }),
        "status" => Ok(Request::Status { job: field("job")? }),
        "cancel" => Ok(Request::Cancel { job: field("job")? }),
        "list" => Ok(Request::List),
        "health" => Ok(Request::Health),
        "shutdown" => {
            let mode = v.get("mode").and_then(Value::as_str).unwrap_or("drain");
            match mode {
                "drain" => Ok(Request::Shutdown { drain: true }),
                "now" => Ok(Request::Shutdown { drain: false }),
                other => Err(format!("unknown shutdown mode {other:?}")),
            }
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// A structured rejection (`{"ok":false,...}`) ready for the wire.
#[must_use]
pub fn error(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":{},\"message\":{}}}}}\n",
        json::quote(kind),
        json::quote(message),
    )
}

fn job_fields(record: &JobRecord) -> String {
    let error = match &record.error {
        Some(e) => json::quote(e),
        None => "null".to_string(),
    };
    format!(
        "\"job\":{},\"name\":{},\"state\":{},\"fails\":{},\"error\":{}",
        json::quote(&record.id),
        json::quote(&record.name),
        json::quote(record.state.as_str()),
        record.fails,
        error,
    )
}

/// Submission acknowledged. `deduped` marks an idempotent hit on an
/// existing job.
#[must_use]
pub fn ok_submit(record: &JobRecord, deduped: bool) -> String {
    format!(
        "{{\"ok\":true,{},\"deduped\":{deduped}}}\n",
        job_fields(record)
    )
}

/// One job's state.
#[must_use]
pub fn ok_job(record: &JobRecord) -> String {
    format!("{{\"ok\":true,{}}}\n", job_fields(record))
}

/// Every known job, in admission order.
#[must_use]
pub fn ok_list(records: &[JobRecord]) -> String {
    let jobs: Vec<String> = records
        .iter()
        .map(|r| format!("{{{}}}", job_fields(r)))
        .collect();
    format!("{{\"ok\":true,\"jobs\":[{}]}}\n", jobs.join(","))
}

/// Load snapshot for `health`.
#[must_use]
pub fn ok_health(
    state: &str,
    queued: usize,
    running: usize,
    done: usize,
    queue_cap: usize,
) -> String {
    format!(
        "{{\"ok\":true,\"state\":{},\"queued\":{queued},\"running\":{running},\
         \"done\":{done},\"queue_cap\":{queue_cap}}}\n",
        json::quote(state),
    )
}

/// Shutdown acknowledged.
#[must_use]
pub fn ok_shutdown(drain: bool) -> String {
    format!(
        "{{\"ok\":true,\"mode\":{}}}\n",
        json::quote(if drain { "drain" } else { "now" })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::JobState;

    #[test]
    fn requests_parse_and_reject_structurally() {
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"manifest\":\"m\"}").unwrap(),
            Request::Submit {
                manifest: "m".to_string()
            }
        );
        assert_eq!(parse_request("{\"op\":\"list\"}").unwrap(), Request::List);
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown { drain: true }
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\",\"mode\":\"now\"}").unwrap(),
            Request::Shutdown { drain: false }
        );
        for bad in [
            "",
            "not json",
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"status\"}",
            "{\"op\":\"submit\",\"manifest\":7}",
            "{\"op\":\"shutdown\",\"mode\":\"later\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn responses_are_single_line_json() {
        let r = JobRecord {
            id: "j1".into(),
            name: "n\"ewline\n".into(),
            state: JobState::Running,
            manifest: String::new(),
            fails: 2,
            error: Some("e".into()),
            seq: 0,
        };
        for text in [
            ok_submit(&r, true),
            ok_job(&r),
            ok_list(std::slice::from_ref(&r)),
            ok_health("running", 1, 2, 3, 64),
            ok_shutdown(false),
            error("overloaded", "queue full"),
        ] {
            assert!(text.ends_with('\n'));
            assert_eq!(text.trim_end().lines().count(), 1, "{text:?}");
            let v = qufi_obs::json::parse(text.trim()).expect(&text);
            assert!(v.get("ok").is_some());
        }
        let v = qufi_obs::json::parse(ok_job(&r).trim()).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("running"));
        assert_eq!(v.get("fails").unwrap().as_u64(), Some(2));
    }
}
