//! Protocol and supervision robustness: every failure mode a hostile or
//! unlucky client can produce must yield a structured error (or a clean
//! close) and leave the daemon fully serviceable. The handler here is a
//! millisecond-scale stub driven by directives in the "manifest" text,
//! so these tests exercise the daemon — queue, dedup, cancel, timeout,
//! poison, drain, recovery — without simulating a single circuit.

use qufi_obs::json::Value;
use qufi_serve::client::Client;
use qufi_serve::store::{JobState, Store};
use qufi_serve::{Config, HandlerOutcome, JobHandler, Server};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Directive-driven stub: the manifest text is a list of lines —
/// `name=<display>`, `sleep_ms=<n>` (cancel-aware), `fail=<n>` (error
/// the first n attempts), `panic` (always panic). Canonicalization
/// sorts the lines, so permuted submissions content-address together.
struct StubHandler {
    attempts: Mutex<HashMap<String, u32>>,
}

impl StubHandler {
    fn new() -> Arc<StubHandler> {
        Arc::new(StubHandler {
            attempts: Mutex::new(HashMap::new()),
        })
    }
}

impl JobHandler for StubHandler {
    fn canonicalize(&self, manifest: &str) -> Result<(String, String), String> {
        if manifest.contains("invalid") {
            return Err("stub: manifest marked invalid".to_string());
        }
        let mut lines: Vec<&str> = manifest
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        lines.sort_unstable();
        let name = lines
            .iter()
            .find_map(|l| l.strip_prefix("name="))
            .unwrap_or("anonymous")
            .to_string();
        Ok((lines.join("\n"), name))
    }

    fn run(
        &self,
        manifest: &str,
        dir: &Path,
        cancel: &Arc<AtomicBool>,
    ) -> Result<HandlerOutcome, String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let directive = |key: &str| -> Option<u64> {
            manifest
                .lines()
                .find_map(|l| l.strip_prefix(key))
                .and_then(|v| v.parse().ok())
        };
        if manifest.lines().any(|l| l.trim() == "panic") {
            panic!("stub: told to panic");
        }
        // A handler bug the daemon must absorb: report `Stopped` on the
        // first attempt with the cancel flag untouched.
        if manifest.lines().any(|l| l.trim() == "stop_once") {
            let mut attempts = self.attempts.lock().unwrap();
            let seen = attempts.entry(manifest.to_string()).or_insert(0);
            *seen += 1;
            if *seen == 1 {
                return Ok(HandlerOutcome::Stopped);
            }
        }
        if let Some(n) = directive("fail=") {
            let mut attempts = self.attempts.lock().unwrap();
            let seen = attempts.entry(manifest.to_string()).or_insert(0);
            *seen += 1;
            if u64::from(*seen) <= n {
                return Err(format!("stub: planned failure {seen}"));
            }
        }
        if let Some(ms) = directive("sleep_ms=") {
            let deadline = std::time::Instant::now() + Duration::from_millis(ms);
            while std::time::Instant::now() < deadline {
                if cancel.load(Ordering::SeqCst) {
                    return Ok(HandlerOutcome::Stopped);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        std::fs::write(dir.join("result.txt"), manifest).map_err(|e| e.to_string())?;
        Ok(HandlerOutcome::Complete)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        dir: temp_dir(tag),
        workers: 2,
        queue_cap: 8,
        conn_cap: 8,
        max_request: 4096,
        io_timeout: Duration::from_millis(400),
        job_timeout: None,
        max_strikes: 3,
    }
}

fn start(cfg: Config) -> (Server, Client) {
    let server = Server::start(cfg, StubHandler::new()).expect("server starts");
    let client = Client::connect(server.addr(), Duration::from_secs(2)).expect("client connects");
    (server, client)
}

fn drain(server: Server, client: &mut Client) {
    let reply = client.shutdown(true).expect("shutdown drain");
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    server.wait().expect("drain exits cleanly");
}

fn str_field<'v>(reply: &'v Value, key: &str) -> &'v str {
    reply.get(key).and_then(Value::as_str).unwrap_or_else(|| {
        panic!("reply {reply:?} lacks string field {key:?}");
    })
}

#[test]
fn submit_runs_to_done_and_dedups_by_content() {
    let cfg = config("submit");
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    let reply = client.submit("name=alpha\nsleep_ms=5").unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(reply.get("deduped"), Some(&Value::Bool(false)));
    let id = str_field(&reply, "job").to_string();
    let done = client
        .wait_for(&id, &["done"], Duration::from_secs(5))
        .unwrap();
    assert_eq!(str_field(&done, "state"), "done");
    assert!(dir.join("jobs").join(&id).join("result.txt").exists());

    // Same content, permuted lines → the same job, no second run.
    let again = client.submit("sleep_ms=5\nname=alpha").unwrap();
    assert_eq!(str_field(&again, "job"), id);
    assert_eq!(again.get("deduped"), Some(&Value::Bool(true)));
    assert_eq!(str_field(&again, "state"), "done");
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn invalid_manifest_is_a_structured_rejection() {
    let cfg = config("invalid");
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    let reply = client.submit("name=x\ninvalid").unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        str_field(reply.get("error").unwrap(), "kind"),
        "invalid_manifest"
    );
    // Nothing persisted for a rejected submission.
    let list = client.list().unwrap();
    assert_eq!(list.get("jobs").unwrap().as_arr().unwrap().len(), 0);
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn flood_sheds_with_overloaded_and_health_stays_responsive() {
    let mut cfg = config("flood");
    cfg.workers = 1;
    cfg.queue_cap = 2;
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    // One long job occupies the worker; then flood distinct manifests.
    let blocker = client.submit("name=blocker\nsleep_ms=60000").unwrap();
    let blocker_id = str_field(&blocker, "job").to_string();
    let mut shed = 0;
    let mut admitted = Vec::new();
    for i in 0..10 {
        let reply = client
            .submit(&format!("name=flood-{i}\nsleep_ms=60000"))
            .unwrap();
        if reply.get("ok") == Some(&Value::Bool(true)) {
            admitted.push(str_field(&reply, "job").to_string());
        } else {
            assert_eq!(str_field(reply.get("error").unwrap(), "kind"), "overloaded");
            shed += 1;
        }
    }
    assert!(shed >= 8, "queue_cap=2 must shed most of 10: shed {shed}");
    assert!(admitted.len() <= 2);
    // Health answers immediately even at full load.
    let health = client.health().unwrap();
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(str_field(&health, "state"), "running");
    assert_eq!(health.get("running").unwrap().as_u64(), Some(1));
    // Unwedge: cancel everything, then drain.
    client.cancel(&blocker_id).unwrap();
    for id in &admitted {
        client.cancel(id).unwrap();
    }
    client
        .wait_for(&blocker_id, &["canceled"], Duration::from_secs(5))
        .unwrap();
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_and_oversized_and_garbage_frames_leave_the_daemon_clean() {
    let cfg = config("frames");
    let dir = cfg.dir.clone();
    let max_request = cfg.max_request;
    let (server, client) = start(cfg);
    let addr = server.addr();

    // Torn frame: half a request, then close. Daemon must not care.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"{\"op\":\"sub").unwrap();
    }
    // Oversized frame: a single line over the cap → structured too_large.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let huge = vec![b'x'; max_request + 64];
        raw.write_all(&huge).unwrap();
        let mut reply = String::new();
        raw.read_to_string(&mut reply).unwrap();
        assert!(reply.contains("\"too_large\""), "{reply:?}");
    }
    // Garbage then a valid request on the SAME connection: bad_request
    // does not burn the connection.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        raw.write_all(b"not json at all\n{\"op\":\"health\"}\n")
            .unwrap();
        let mut reader = std::io::BufReader::new(raw);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("\"bad_request\""), "{line:?}");
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line:?}");
    }
    // A fresh protocol client still works after all of the above (the
    // original may itself have idled past the server's read deadline).
    drop(client);
    let mut client = Client::connect(addr, Duration::from_secs(2)).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn idle_socket_hits_the_read_deadline() {
    let cfg = config("idle");
    let dir = cfg.dir.clone();
    let io_timeout = cfg.io_timeout;
    let (server, client) = start(cfg);
    drop(client); // it would idle out right alongside the raw socket
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(io_timeout * 10)).unwrap();
    // Send nothing; the server must give up on us, not hold the slot.
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.contains("\"timeout\""), "{reply:?}");
    let mut client = Client::connect(server.addr(), Duration::from_secs(2)).unwrap();
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancel_running_job_lands_on_canceled_and_resubmit_requeues() {
    let cfg = config("cancel");
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    let manifest = "name=c\nsleep_ms=60000";
    let id = str_field(&client.submit(manifest).unwrap(), "job").to_string();
    client
        .wait_for(&id, &["running"], Duration::from_secs(5))
        .unwrap();
    // Concurrent cancel + status racing must both stay structured.
    let reply = client.cancel(&id).unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    let settled = client
        .wait_for(&id, &["canceled"], Duration::from_secs(5))
        .unwrap();
    assert_eq!(str_field(&settled, "state"), "canceled");
    // Explicit resubmission of a canceled job re-admits it (same id).
    let again = client.submit("sleep_ms=60000\nname=c").unwrap();
    assert_eq!(str_field(&again, "job"), id);
    assert_eq!(again.get("deduped"), Some(&Value::Bool(false)));
    client
        .wait_for(&id, &["running"], Duration::from_secs(5))
        .unwrap();
    client.cancel(&id).unwrap();
    client
        .wait_for(&id, &["canceled"], Duration::from_secs(5))
        .unwrap();
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn job_timeout_fails_the_job_with_a_timeout_error() {
    let mut cfg = config("timeout");
    cfg.job_timeout = Some(Duration::from_millis(60));
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    let id = str_field(&client.submit("name=slow\nsleep_ms=60000").unwrap(), "job").to_string();
    let settled = client
        .wait_for(&id, &["failed"], Duration::from_secs(5))
        .unwrap();
    assert!(
        str_field(&settled, "error").contains("timeout"),
        "{settled:?}"
    );
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn transient_failures_retry_then_poison_after_three_strikes() {
    let cfg = config("poison");
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    // Fails twice, succeeds on the third attempt → retried to done.
    let healing = str_field(&client.submit("name=healing\nfail=2").unwrap(), "job").to_string();
    let healed = client
        .wait_for(&healing, &["done", "poisoned"], Duration::from_secs(10))
        .unwrap();
    assert_eq!(str_field(&healed, "state"), "done");
    assert_eq!(healed.get("fails").unwrap().as_u64(), Some(2));

    // Panics every attempt → quarantined after max_strikes, daemon alive.
    let doomed = str_field(&client.submit("name=doomed\npanic").unwrap(), "job").to_string();
    let settled = client
        .wait_for(&doomed, &["poisoned"], Duration::from_secs(10))
        .unwrap();
    assert_eq!(settled.get("fails").unwrap().as_u64(), Some(3));
    assert!(
        str_field(&settled, "error").contains("panic"),
        "{settled:?}"
    );
    // A poisoned job stays quarantined on resubmission.
    let again = client.submit("name=doomed\npanic").unwrap();
    assert_eq!(again.get("deduped"), Some(&Value::Bool(true)));
    assert_eq!(str_field(&again, "state"), "poisoned");
    // And the daemon still serves fresh work.
    let ok = str_field(&client.submit("name=after\nsleep_ms=1").unwrap(), "job").to_string();
    client
        .wait_for(&ok, &["done"], Duration::from_secs(5))
        .unwrap();
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn colliding_job_id_with_different_manifest_is_rejected_not_aliased() {
    let cfg = config("collision");
    let dir = cfg.dir.clone();
    // Seed a finished job whose id is the content address of a DIFFERENT
    // manifest — exactly what a 64-bit hash collision between two
    // tenants' manifests would produce.
    let victim_manifest = "name=victim\nsleep_ms=1";
    let colliding_id = qufi_serve::job_id(victim_manifest);
    {
        let store = Store::open(&dir).unwrap();
        store
            .save(&qufi_serve::JobRecord {
                id: colliding_id.clone(),
                name: "innocent".to_string(),
                state: JobState::Done,
                manifest: "name=innocent\nsleep_ms=1".to_string(),
                fails: 0,
                error: None,
                seq: 0,
            })
            .unwrap();
    }
    let (server, mut client) = start(cfg);
    // Submitting the colliding manifest must NOT dedup onto the stored
    // job (wrong tenant, shared job_dir) — it is a structured rejection.
    let reply = client.submit(victim_manifest).unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(str_field(reply.get("error").unwrap(), "kind"), "internal");
    assert!(
        str_field(reply.get("error").unwrap(), "message").contains("collision"),
        "{reply:?}"
    );
    // The stored job is untouched and the daemon stays serviceable.
    let status = client.status(&colliding_id).unwrap();
    assert_eq!(str_field(&status, "state"), "done");
    assert_eq!(str_field(&status, "name"), "innocent");
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn spurious_stop_requeues_the_job_instead_of_stranding_it() {
    let mut cfg = config("spurious");
    cfg.workers = 1;
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    // The stub reports `Stopped` on attempt 1 with nobody having flipped
    // the cancel flag; the daemon must put the job back on the live
    // queue (not just the durable one) so attempt 2 completes.
    let id = str_field(&client.submit("name=flaky\nstop_once").unwrap(), "job").to_string();
    let settled = client
        .wait_for(&id, &["done"], Duration::from_secs(5))
        .unwrap();
    assert_eq!(str_field(&settled, "state"), "done");
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn restart_recovers_the_durable_queue_in_order() {
    let cfg = config("recover");
    let dir = cfg.dir.clone();
    // Seed the store as a dead daemon would have left it: one job
    // mid-run, one still queued. (The config is built first — its
    // temp-dir reset must not run after seeding.)
    {
        let store = Store::open(&dir).unwrap();
        for (i, (id, state)) in [("ja", JobState::Running), ("jb", JobState::Queued)]
            .into_iter()
            .enumerate()
        {
            store
                .save(&qufi_serve::JobRecord {
                    id: id.to_string(),
                    name: format!("recovered-{i}"),
                    state,
                    manifest: format!("name=recovered-{i}\nsleep_ms=1"),
                    fails: 0,
                    error: None,
                    seq: i as u64,
                })
                .unwrap();
        }
    }
    let (server, mut client) = start(cfg);
    for id in ["ja", "jb"] {
        let settled = client
            .wait_for(id, &["done"], Duration::from_secs(5))
            .unwrap();
        assert_eq!(str_field(&settled, "state"), "done");
    }
    drain(server, &mut client);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drain_stops_admissions_and_persists_queued_jobs() {
    let mut cfg = config("drain");
    cfg.workers = 1;
    let dir = cfg.dir.clone();
    let (server, mut client) = start(cfg);
    let running = str_field(
        &client.submit("name=inflight\nsleep_ms=300").unwrap(),
        "job",
    )
    .to_string();
    client
        .wait_for(&running, &["running"], Duration::from_secs(5))
        .unwrap();
    let queued = str_field(&client.submit("name=waiting\nsleep_ms=1").unwrap(), "job").to_string();

    let reply = client.shutdown(true).unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    // Post-shutdown submissions are refused with `draining`.
    let refused = client.submit("name=late\nsleep_ms=1").unwrap();
    assert_eq!(str_field(refused.get("error").unwrap(), "kind"), "draining");
    server.wait().unwrap();

    // The in-flight job finished; the queued one survived as `queued`.
    let store = Store::open(&dir).unwrap();
    let (records, _) = store.load_all().unwrap();
    let by_id = |id: &str| records.iter().find(|r| r.id == id).unwrap().state;
    assert_eq!(by_id(&running), JobState::Done);
    assert_eq!(by_id(&queued), JobState::Queued);
    let _ = std::fs::remove_dir_all(dir);
}
