//! Property-based tests of the noise layer: every constructible channel is
//! CPTP, channel application preserves density-matrix invariants, and
//! readout confusion/mitigation are stochastic inverses.

use proptest::prelude::*;
use qufi_noise::{mitigation, KrausChannel, ReadoutError};
use qufi_sim::{DensityMatrix, Gate, ProbDist, QuantumCircuit};

fn arb_prob() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

fn arb_channel() -> impl Strategy<Value = KrausChannel> {
    prop_oneof![
        arb_prob().prop_map(|p| KrausChannel::depolarizing(p, 1)),
        arb_prob().prop_map(|p| KrausChannel::depolarizing(p, 2)),
        arb_prob().prop_map(KrausChannel::amplitude_damping),
        arb_prob().prop_map(KrausChannel::phase_damping),
        ((1e-6f64..1e-3), (0.1f64..2.0), (0.0f64..1e-4)).prop_map(|(t1, ratio, time)| {
            // T2 = ratio·2·T1 with ratio ≤ 1 keeps the channel physical.
            KrausChannel::thermal_relaxation(t1, 2.0 * t1 * ratio.clamp(0.05, 1.0), time)
        }),
        (arb_prob(), arb_prob(), arb_prob()).prop_map(|(a, b, c)| {
            let total = (a + b + c).max(1e-12);
            let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
            KrausChannel::pauli(a * scale, b * scale, c * scale)
        }),
    ]
}

/// A small random pure state to test channels against.
fn arb_state() -> impl Strategy<Value = DensityMatrix> {
    ((0.0f64..3.1), (-3.1f64..3.1), (-3.1f64..3.1), any::<bool>()).prop_map(
        |(t, p, l, entangle)| {
            let mut qc = QuantumCircuit::new(2, 0);
            qc.u(t, p, l, 0);
            if entangle {
                qc.h(1).cx(1, 0);
            }
            let mut rho = DensityMatrix::new(2).expect("fits");
            rho.run_circuit(&qc);
            rho
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn constructed_channels_are_cptp(ch in arb_channel()) {
        prop_assert!(ch.is_cptp(1e-8));
    }

    #[test]
    fn channels_preserve_trace_and_hermiticity(ch in arb_channel(), mut rho in arb_state()) {
        let targets: Vec<usize> = (0..ch.num_qubits()).collect();
        rho.apply_kraus(ch.kraus_operators(), &targets);
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-8);
        prop_assert!(rho.trace().im.abs() < 1e-10);
        prop_assert!(rho.is_hermitian(1e-8));
        // Diagonal entries are probabilities.
        for i in 0..rho.dim() {
            prop_assert!(rho.entry(i, i).re >= -1e-10);
        }
    }

    #[test]
    fn channels_never_increase_purity(ch in arb_channel(), mut rho in arb_state()) {
        let before = rho.purity();
        let targets: Vec<usize> = (0..ch.num_qubits()).collect();
        rho.apply_kraus(ch.kraus_operators(), &targets);
        prop_assert!(rho.purity() <= before + 1e-8);
    }

    #[test]
    fn superoperator_equals_kraus(ch in arb_channel(), base in arb_state()) {
        let targets: Vec<usize> = (0..ch.num_qubits()).collect();
        let mut a = base.clone();
        let mut b = base;
        a.apply_kraus(ch.kraus_operators(), &targets);
        b.apply_superoperator(ch.superoperator(), &targets);
        for i in 0..a.dim() {
            for j in 0..a.dim() {
                prop_assert!(a.entry(i, j).approx_eq(b.entry(i, j), 1e-9));
            }
        }
    }

    #[test]
    fn readout_confusion_is_stochastic(
        p01 in 0.0f64..0.49, p10 in 0.0f64..0.49,
        raw in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let total: f64 = raw.iter().sum();
        prop_assume!(total > 1e-9);
        let dist = ProbDist::from_probs(raw.iter().map(|p| p / total).collect(), 2);
        let ro = ReadoutError::new(p01, p10);
        let out = ro.apply_to_qubit(&ro.apply_to_qubit(&dist, 0), 1);
        prop_assert!((out.total() - 1.0).abs() < 1e-9);
        for i in 0..4 {
            prop_assert!(out.prob(i) >= 0.0);
        }
    }

    #[test]
    fn mitigation_inverts_confusion(
        p01 in 0.0f64..0.4, p10 in 0.0f64..0.4,
        raw in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let total: f64 = raw.iter().sum();
        prop_assume!(total > 1e-9);
        let truth = ProbDist::from_probs(raw.iter().map(|p| p / total).collect(), 2);
        let ro = ReadoutError::new(p01, p10);
        let confused = ro.apply_to_qubit(&truth, 1);
        let recovered = mitigation::unfold_qubit(&confused, &ro, 1).expect("invertible");
        prop_assert!(recovered.tv_distance(&truth) < 1e-8);
    }

    #[test]
    fn depolarizing_interpolates_toward_maximally_mixed(p in arb_prob()) {
        let mut rho = DensityMatrix::new(1).expect("fits");
        rho.apply_gate(Gate::H, &[0]);
        rho.apply_kraus(KrausChannel::depolarizing(p, 1).kraus_operators(), &[0]);
        // Off-diagonal coherence shrinks exactly by (1 − p).
        let coherence = rho.entry(0, 1).norm();
        prop_assert!((coherence - 0.5 * (1.0 - p)).abs() < 1e-9);
    }
}
