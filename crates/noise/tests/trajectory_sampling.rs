//! Sampling-layer properties of the trajectory engine: Kraus branches are
//! drawn with their Born weights, and averaging per-shot outcome
//! distributions reconstructs the exact channel action at the expected
//! `O(1/√shots)` rate.
//!
//! The branch-frequency tests run a *fixed* seed set, so they are
//! deterministic regression gates (the chi-square critical value guards
//! the statistics once, at authoring time, not per CI run).

use proptest::prelude::*;
use qufi_noise::model::QubitNoiseSpec;
use qufi_noise::{run_trajectories, simulate, NoiseModel, ReadoutError};
use qufi_sim::QuantumCircuit;

/// Splitmix-style per-shot seed stream — one independent stream per
/// `base`, matching the unit-test helper in `qufi_noise::trajectory`.
fn shot_seeds(base: u64) -> impl FnMut(u64) -> u64 {
    move |shot| base.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(shot)
}

/// A 1-qubit model whose only noise is thermal relaxation after each
/// gate, tuned so the decay branch fires with probability `gamma`.
fn relaxation_model(gamma: f64) -> NoiseModel {
    let t1 = 50e-6;
    // γ = 1 − e^(−t/T1)  ⇒  t = −T1·ln(1 − γ).
    let time = -t1 * (1.0 - gamma).ln();
    let spec = QubitNoiseSpec {
        t1,
        t2: t1, // adds pure dephasing, which never moves population
        gate_error_1q: 0.0,
        readout: ReadoutError::new(0.0, 0.0),
    };
    NoiseModel::from_specs(&[spec], &[], time, time)
}

/// Branch frequencies match Born weights: prepare |1⟩, let thermal
/// relaxation pick a branch per shot. Each trajectory ends in exactly
/// |0⟩ (the decay branch, weight γ) or |1⟩, so the shot-averaged P(0)
/// *is* the decay-branch frequency. A chi-square test at 4096 fixed
/// seeds pins it to the channel-implied probability.
#[test]
fn branch_frequencies_match_channel_probabilities() {
    const SHOTS: u64 = 4096;
    // χ²(1 dof) critical value at p = 0.001 — verified once against the
    // pinned seed streams below, then frozen.
    const CHI2_CRIT: f64 = 10.83;
    for (case, gamma) in [0.1, 0.25, 0.5].into_iter().enumerate() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let model = relaxation_model(gamma);
        let dist = run_trajectories(&qc, &model, SHOTS, shot_seeds(0xB0A7 + case as u64))
            .expect("trajectories");
        let f = dist.prob(0); // decay-branch frequency
        let chi2 = SHOTS as f64 * (f - gamma).powi(2) / (gamma * (1.0 - gamma));
        assert!(
            chi2 < CHI2_CRIT,
            "γ={gamma}: decay frequency {f:.4} vs expected {gamma} (χ² = {chi2:.2})"
        );
    }
}

/// The no-branch fast path: a γ→0 relaxation channel still has several
/// Kraus operators, but a *noiseless* model has none, and single-operator
/// channels consume no randomness — so an ideal circuit's "trajectories"
/// are all identical and the mean is exact.
#[test]
fn ideal_trajectories_are_exact_at_any_shot_count() {
    let mut qc = QuantumCircuit::new(2, 2);
    qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let model = NoiseModel::ideal(2);
    let one = run_trajectories(&qc, &model, 1, shot_seeds(1)).expect("1 shot");
    let many = run_trajectories(&qc, &model, 777, shot_seeds(2)).expect("777 shots");
    for i in 0..one.len() {
        assert!(
            (one.prob(i) - many.prob(i)).abs() < 1e-12,
            "outcome {i}: ideal mean should not depend on shots"
        );
    }
    assert!((one.prob(0) - 0.5).abs() < 1e-12);
    assert!((one.prob(3) - 0.5).abs() < 1e-12);
}

fn arb_angle() -> impl Strategy<Value = f64> {
    -3.1f64..3.1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Averaging per-shot projector distributions reconstructs the exact
    /// (density-path) channel action on random input states, within the
    /// `O(1/√shots)` envelope. 1024 shots ⇒ tv ≤ 3/√1024 ≈ 0.094.
    #[test]
    fn shot_average_reconstructs_channel_action(
        t in 0.0f64..3.1, p in arb_angle(), l in arb_angle(),
        t1_ratio in 0.2f64..1.0,
        err_1q in 0.0f64..5e-3,
        cx_err in 0.0f64..2e-2,
    ) {
        const SHOTS: u64 = 1024;
        let t1 = 60e-6;
        let spec = |ro: ReadoutError| QubitNoiseSpec {
            t1,
            t2: 2.0 * t1 * t1_ratio,
            gate_error_1q: err_1q,
            readout: ro,
        };
        let model = NoiseModel::from_specs(
            &[spec(ReadoutError::new(0.01, 0.02)), spec(ReadoutError::new(0.0, 0.0))],
            &[((0, 1), cx_err)],
            35e-9,
            300e-9,
        );
        let mut qc = QuantumCircuit::new(2, 2);
        qc.u(t, p, l, 0);
        qc.h(1).cx(0, 1);
        qc.measure(0, 0).measure(1, 1);

        let exact = simulate::run_noisy(&qc, &model).expect("density path");
        let base = t.to_bits() ^ p.to_bits().rotate_left(17) ^ l.to_bits().rotate_left(34);
        let sampled = run_trajectories(&qc, &model, SHOTS, shot_seeds(base))
            .expect("trajectory path");
        let tv = sampled.tv_distance(&exact);
        prop_assert!(
            tv <= 3.0 / (SHOTS as f64).sqrt(),
            "tv = {tv:.4} above the √shots envelope"
        );
        // Readout confusion is applied to the *averaged* distribution, so
        // normalization survives sampling exactly.
        prop_assert!((sampled.total() - 1.0).abs() < 1e-9);
    }
}
