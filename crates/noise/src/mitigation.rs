//! Readout-error mitigation.
//!
//! The standard post-processing counterpart of [`crate::ReadoutError`]:
//! invert each qubit's 2×2 confusion matrix and apply the inverse to the
//! measured distribution. This is what Qiskit's measurement-mitigation
//! fitters do for uncorrelated readout noise, and it is the natural tool to
//! separate *readout* artifacts from genuine fault propagation when
//! analyzing QVF data.
//!
//! Inversion can produce small negative quasi-probabilities; they are
//! clipped to zero and the distribution renormalized (the common
//! least-disruptive correction).

use crate::readout::ReadoutError;
use qufi_sim::ProbDist;

/// Error returned when a confusion matrix is singular (p01 + p10 = 1, i.e.
/// readout carries no information about the prepared state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularConfusion {
    /// The offending qubit.
    pub qubit: usize,
}

impl core::fmt::Display for SingularConfusion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "confusion matrix of qubit {} is singular and cannot be inverted",
            self.qubit
        )
    }
}

impl std::error::Error for SingularConfusion {}

/// Applies the inverse confusion matrix of one qubit to a distribution.
///
/// # Errors
///
/// [`SingularConfusion`] when `1 − p01 − p10 = 0`.
pub fn unfold_qubit(
    dist: &ProbDist,
    error: &ReadoutError,
    bit: usize,
) -> Result<ProbDist, SingularConfusion> {
    assert!(bit < dist.num_bits(), "bit out of range");
    // Confusion matrix M = [[1−p01, p10], [p01, 1−p10]], acting on the
    // (P0, P1) column. det(M) = 1 − p01 − p10.
    let det = 1.0 - error.p01() - error.p10();
    if det.abs() < 1e-12 {
        return Err(SingularConfusion { qubit: bit });
    }
    let inv00 = (1.0 - error.p10()) / det;
    let inv01 = -error.p10() / det;
    let inv10 = -error.p01() / det;
    let inv11 = (1.0 - error.p01()) / det;

    let mut probs: Vec<f64> = dist.probs().to_vec();
    let mask = 1usize << bit;
    for idx in 0..probs.len() {
        if idx & mask != 0 {
            continue;
        }
        let p0 = probs[idx];
        let p1 = probs[idx | mask];
        probs[idx] = inv00 * p0 + inv01 * p1;
        probs[idx | mask] = inv10 * p0 + inv11 * p1;
    }
    // Clip quasi-probabilities and renormalize.
    for p in &mut probs {
        if *p < 0.0 {
            *p = 0.0;
        }
    }
    let total: f64 = probs.iter().sum();
    if total > 0.0 {
        for p in &mut probs {
            *p /= total;
        }
    }
    Ok(ProbDist::from_probs(probs, dist.num_bits()))
}

/// Applies per-qubit mitigation for every bit with a known readout error.
///
/// # Errors
///
/// Propagates the first singular confusion matrix.
pub fn mitigate_readout(
    dist: &ProbDist,
    errors: &[Option<ReadoutError>],
) -> Result<ProbDist, SingularConfusion> {
    let mut out = dist.clone();
    for (bit, err) in errors.iter().enumerate() {
        if bit >= dist.num_bits() {
            break;
        }
        if let Some(e) = err {
            if !e.is_ideal() {
                out = unfold_qubit(&out, e, bit)?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readout::apply_readout_errors;

    #[test]
    fn unfold_inverts_confusion_exactly() {
        let err = ReadoutError::new(0.04, 0.09);
        let truth = ProbDist::from_probs(vec![0.7, 0.3], 1);
        let confused = err.apply_to_qubit(&truth, 0);
        let recovered = unfold_qubit(&confused, &err, 0).unwrap();
        assert!(recovered.tv_distance(&truth) < 1e-12);
    }

    #[test]
    fn multi_qubit_mitigation_roundtrip() {
        let errs = vec![
            Some(ReadoutError::new(0.02, 0.05)),
            Some(ReadoutError::new(0.03, 0.01)),
            None,
        ];
        let truth = ProbDist::from_probs(vec![0.4, 0.1, 0.05, 0.05, 0.2, 0.1, 0.05, 0.05], 3);
        let confused = apply_readout_errors(&truth, &errs);
        assert!(confused.tv_distance(&truth) > 1e-3, "confusion must act");
        let recovered = mitigate_readout(&confused, &errs).unwrap();
        assert!(recovered.tv_distance(&truth) < 1e-10);
    }

    #[test]
    fn clipping_keeps_distribution_valid() {
        // Feed a distribution that was NOT produced by this confusion
        // matrix; inversion overshoots and must be clipped + renormalized.
        let err = ReadoutError::new(0.4, 0.4);
        let skewed = ProbDist::from_probs(vec![1.0, 0.0], 1);
        let out = unfold_qubit(&skewed, &err, 0).unwrap();
        assert!((out.total() - 1.0).abs() < 1e-12);
        assert!(out.prob(0) >= 0.0 && out.prob(1) >= 0.0);
    }

    #[test]
    fn singular_matrix_rejected() {
        let err = ReadoutError::new(0.5, 0.5);
        let d = ProbDist::uniform(1);
        assert_eq!(
            unfold_qubit(&d, &err, 0),
            Err(SingularConfusion { qubit: 0 })
        );
    }

    #[test]
    fn mitigation_improves_noisy_golden_probability() {
        // End-to-end: BV through a noisy device; mitigation should raise the
        // golden state's probability.
        use crate::backend::BackendCalibration;
        use crate::simulate;
        let mut qc = qufi_sim::QuantumCircuit::new(2, 2);
        qc.x(0).x(1).measure_all();
        let cal = BackendCalibration::lima();
        let model = cal.noise_model();
        let noisy = simulate::run_noisy(&qc, &model).unwrap();
        let mitigated = mitigate_readout(&noisy, model.readout_errors()).unwrap();
        assert!(
            mitigated.prob(0b11) > noisy.prob(0b11),
            "mitigated {:.4} vs noisy {:.4}",
            mitigated.prob(0b11),
            noisy.prob(0b11)
        );
    }
}
