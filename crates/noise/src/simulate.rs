//! Noisy circuit execution: the "simulation of a physical machine" scenario.
//!
//! Runs a circuit on the density-matrix engine, interleaving each gate with
//! the channels its [`NoiseModel`] prescribes, then applies readout
//! confusion before marginalizing to the classical register.
//!
//! The evolution is driven by [`NoisyCursor`], which can pause at any
//! instruction boundary, hand out state snapshots ([`NoisyCursor::fork`]),
//! and finish the suffix per fork. [`evolve_noisy`]/[`run_noisy`] are thin
//! wrappers that advance a cursor straight through — so a prefix-then-suffix
//! evolution applies exactly the same gate/Kraus sequence in exactly the
//! same order as a one-shot run and is numerically **bit-identical** to it.

use crate::model::NoiseModel;
use crate::readout::apply_readout_errors;
use qufi_math::CMatrix;
use qufi_sim::circuit::Op;
use qufi_sim::{DensityMatrix, Gate, ProbDist, QuantumCircuit, SimError};

/// One planned-step view handed out by [`NoisePlan::planned_steps`]:
/// `(gate matrix, operand qubits, channel superoperators)`.
pub type PlannedStep<'a> = (&'a CMatrix, &'a [usize], &'a [(CMatrix, Vec<usize>)]);

/// One compiled gate instruction: its unitary and the noise superoperators
/// that follow it, resolved against a concrete [`NoiseModel`].
struct PlanStep {
    matrix: CMatrix,
    qubits: Vec<usize>,
    /// `(superoperator, target qubits)` in the model's canonical order.
    channels: Vec<(CMatrix, Vec<usize>)>,
}

/// A circuit compiled against a noise model: per-instruction gate matrices
/// and channel superoperators resolved **once**, so a replay loop walking
/// the same suffix hundreds of times pays no per-gate matrix construction,
/// channel lookup, or allocation.
///
/// A plan is only meaningful for the `(circuit, model)` pair it was
/// compiled from; [`NoisyCursor::advance_planned`] applies exactly the
/// gate/channel sequence [`NoisyCursor::advance_to`] would apply against
/// the same model, bit-for-bit.
pub struct NoisePlan {
    size: usize,
    num_qubits: usize,
    /// One entry per instruction; `None` for barriers and measurements.
    steps: Vec<Option<PlanStep>>,
    /// Per-qubit channels suffered by a spliced 1-qubit injector gate
    /// (`U(θ,φ,λ)` — a calibrated physical gate, never the virtual `rz`).
    injector_channels: Vec<Vec<(CMatrix, Vec<usize>)>>,
}

impl NoisePlan {
    /// Compiles `qc` against `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model covers fewer qubits than the circuit uses.
    pub fn compile(qc: &QuantumCircuit, model: &NoiseModel) -> Self {
        let _compile_span = qufi_obs::span("noise.plan.compile_ns");
        qufi_obs::add("noise.plans_compiled", 1);
        assert!(
            model.num_qubits() >= qc.num_qubits(),
            "noise model covers {} qubits, circuit needs {}",
            model.num_qubits(),
            qc.num_qubits()
        );
        let resolve = |gate: Gate, qubits: &[usize]| {
            model
                .channels_after(gate, qubits)
                .into_iter()
                .map(|(ch, targets)| (ch.superoperator().clone(), targets))
                .collect::<Vec<_>>()
        };
        let steps = qc
            .ops()
            .iter()
            .map(|op| match op {
                Op::Gate { gate, qubits } => Some(PlanStep {
                    matrix: gate.matrix(),
                    qubits: qubits.clone(),
                    channels: resolve(*gate, qubits),
                }),
                _ => None,
            })
            .collect();
        let injector_channels = (0..qc.num_qubits())
            .map(|q| resolve(Gate::U(0.0, 0.0, 0.0), &[q]))
            .collect();
        NoisePlan {
            size: qc.size(),
            num_qubits: qc.num_qubits(),
            steps,
            injector_channels,
        }
    }

    /// Number of instructions in the compiled circuit.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Width of the compiled circuit.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The compiled gate steps in `[from, upto)`, barriers/measurements
    /// skipped: `(gate matrix, operand qubits, channel superoperators)`.
    ///
    /// This is the batch-friendly view of the plan: walking it and applying
    /// each unitary and channel in order performs exactly the sequence
    /// [`NoisyCursor::advance_planned`] performs over the same range, so a
    /// batched replay that drives all grid cells through it stays
    /// bit-identical to the scalar cursor.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the plan.
    pub fn planned_steps(&self, from: usize, upto: usize) -> impl Iterator<Item = PlannedStep<'_>> {
        assert!(
            from <= upto && upto <= self.size,
            "step range out of bounds"
        );
        self.steps[from..upto]
            .iter()
            .flatten()
            .map(|s| (&s.matrix, s.qubits.as_slice(), s.channels.as_slice()))
    }

    /// The channel superoperators a spliced 1-qubit injector gate suffers on
    /// `qubit` — what [`NoisyCursor::apply_planned_injector`] applies after
    /// the injector's unitary.
    pub fn injector_channels(&self, qubit: usize) -> &[(CMatrix, Vec<usize>)] {
        &self.injector_channels[qubit]
    }
}

/// A paused noisy evolution: the density matrix after the first
/// [`position`](NoisyCursor::position) instructions of a circuit, each gate
/// followed by its noise channels in the model's canonical order.
///
/// # Example
///
/// ```
/// use qufi_noise::{simulate::NoisyCursor, NoiseModel};
/// use qufi_sim::QuantumCircuit;
///
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure_all();
/// let model = NoiseModel::ideal(2);
/// let mut cursor = NoisyCursor::start(&qc, &model).unwrap();
/// cursor.advance_to(&qc, 1); // shared prefix: just the H
/// let mut fork = cursor.fork();
/// fork.advance_to_end(&qc);
/// let dist = fork.finish(&qc);
/// assert!((dist.prob_of("11") - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct NoisyCursor<'m> {
    rho: DensityMatrix,
    model: &'m NoiseModel,
    pos: usize,
}

impl<'m> NoisyCursor<'m> {
    /// A cursor at instruction 0 of `qc` in the `|0…0⟩⟨0…0|` state.
    ///
    /// # Errors
    ///
    /// Returns an error when the register exceeds the density-matrix
    /// engine's width limit.
    ///
    /// # Panics
    ///
    /// Panics if the model covers fewer qubits than the circuit uses.
    pub fn start(qc: &QuantumCircuit, model: &'m NoiseModel) -> Result<Self, SimError> {
        assert!(
            model.num_qubits() >= qc.num_qubits(),
            "noise model covers {} qubits, circuit needs {}",
            model.num_qubits(),
            qc.num_qubits()
        );
        Ok(NoisyCursor {
            rho: DensityMatrix::new(qc.num_qubits())?,
            model,
            pos: 0,
        })
    }

    /// Resumes from a previously-snapshotted density matrix at instruction
    /// `pos` — the inverse of [`NoisyCursor::into_state`].
    pub fn resume(rho: DensityMatrix, model: &'m NoiseModel, pos: usize) -> Self {
        NoisyCursor { rho, model, pos }
    }

    /// Number of instructions already applied.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The current density matrix.
    #[inline]
    pub fn state(&self) -> &DensityMatrix {
        &self.rho
    }

    /// Consumes the cursor, yielding the density matrix.
    pub fn into_state(self) -> DensityMatrix {
        self.rho
    }

    /// An independent snapshot of the paused evolution; replaying a fork
    /// never mutates the original.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Applies one gate followed by the channels the model prescribes for
    /// it — the same primitive [`advance_to`](NoisyCursor::advance_to) uses
    /// per instruction, exposed so a fault injector can splice an
    /// out-of-circuit gate (which then suffers gate noise like any physical
    /// gate) without moving the instruction position.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.rho.apply_gate(gate, qubits);
        for (ch, targets) in self.model.channels_after(gate, qubits) {
            self.rho.apply_superoperator(ch.superoperator(), &targets);
        }
    }

    /// Applies instructions `[position, upto)` of `qc`: gates evolve the
    /// state under noise, barriers and measurements are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `upto` is behind the cursor or beyond the circuit.
    pub fn advance_to(&mut self, qc: &QuantumCircuit, upto: usize) {
        assert!(
            upto >= self.pos,
            "cursor at {} cannot rewind to {upto}",
            self.pos
        );
        assert!(
            upto <= qc.size(),
            "advance_to({upto}) beyond circuit of {} instructions",
            qc.size()
        );
        for op in &qc.ops()[self.pos..upto] {
            if let Op::Gate { gate, qubits } = op {
                self.apply_gate(*gate, qubits);
            }
        }
        self.pos = upto;
    }

    /// Applies every remaining instruction of `qc`.
    pub fn advance_to_end(&mut self, qc: &QuantumCircuit) {
        self.advance_to(qc, qc.size());
    }

    /// Applies instructions `[position, upto)` through a [`NoisePlan`]
    /// compiled from the same circuit and model: the precompiled gate
    /// matrices and channel superoperators are applied in the exact order
    /// [`NoisyCursor::advance_to`] would apply them, so the two paths are
    /// bit-identical — the plan only removes the per-gate matrix
    /// construction and channel-lookup allocations from replay loops.
    ///
    /// # Panics
    ///
    /// Panics when `upto` is behind the cursor or beyond the plan.
    pub fn advance_planned(&mut self, plan: &NoisePlan, upto: usize) {
        assert!(
            upto >= self.pos,
            "cursor at {} cannot rewind to {upto}",
            self.pos
        );
        assert!(
            upto <= plan.size(),
            "advance_planned({upto}) beyond plan of {} instructions",
            plan.size()
        );
        for step in plan.steps[self.pos..upto].iter().flatten() {
            self.rho.apply_unitary(&step.matrix, &step.qubits);
            for (superop, targets) in &step.channels {
                self.rho.apply_superoperator(superop, targets);
            }
        }
        self.pos = upto;
    }

    /// The planned counterpart of [`NoisyCursor::apply_gate`] for a spliced
    /// 1-qubit injector: applies the gate's unitary, then the channels the
    /// plan cached for a calibrated 1-qubit gate on `qubit`, without moving
    /// the instruction position. Bit-identical to
    /// [`NoisyCursor::apply_gate`] for any non-virtual 1-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics for multi-qubit gates and for the virtual `rz` (which carries
    /// no noise and must not be spliced through this path).
    pub fn apply_planned_injector(&mut self, plan: &NoisePlan, gate: Gate, qubit: usize) {
        assert_eq!(gate.num_qubits(), 1, "injector must be a 1-qubit gate");
        assert!(
            !matches!(gate, Gate::Rz(_)),
            "virtual rz gates carry no noise and cannot use the injector path"
        );
        self.rho.apply_unitary(&gate.matrix(), &[qubit]);
        for (superop, targets) in &plan.injector_channels[qubit] {
            self.rho.apply_superoperator(superop, targets);
        }
    }

    /// Completes the run: readout confusion on the qubit distribution,
    /// then marginalization through `qc`'s measurement map (the full qubit
    /// distribution when the circuit has no measurements).
    pub fn finish(self, qc: &QuantumCircuit) -> ProbDist {
        self.finish_dist(qc)
    }

    /// [`NoisyCursor::finish`] without consuming the cursor, so a replay
    /// loop can read the distribution and then recycle the cursor's state
    /// buffer ([`NoisyCursor::into_state`]) for the next replay.
    pub fn finish_dist(&self, qc: &QuantumCircuit) -> ProbDist {
        let mut dist = self.rho.probabilities();
        dist = apply_readout_errors(&dist, self.model.readout_errors());
        let map = qc.measurement_map();
        if map.is_empty() {
            dist
        } else {
            dist.marginalize(&map, qc.num_clbits())
        }
    }
}

/// Evolves the density matrix of `qc` under `model`'s gate noise.
///
/// Readout error is **not** applied here (it acts on the measured
/// distribution, not the state); use [`run_noisy`] for the full pipeline.
///
/// # Errors
///
/// Returns an error when the register exceeds the density-matrix engine's
/// width limit.
///
/// # Panics
///
/// Panics if the model covers fewer qubits than the circuit uses.
pub fn evolve_noisy(qc: &QuantumCircuit, model: &NoiseModel) -> Result<DensityMatrix, SimError> {
    let mut cursor = NoisyCursor::start(qc, model)?;
    cursor.advance_to_end(qc);
    Ok(cursor.into_state())
}

/// Full noisy execution: gate noise, readout confusion, marginalization to
/// the classical register. Returns the exact output distribution.
///
/// # Errors
///
/// Returns an error when the register exceeds the engine's width limit.
pub fn run_noisy(qc: &QuantumCircuit, model: &NoiseModel) -> Result<ProbDist, SimError> {
    let mut cursor = NoisyCursor::start(qc, model)?;
    cursor.advance_to_end(qc);
    Ok(cursor.finish(qc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendCalibration;
    use qufi_sim::Statevector;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn ideal_model_reproduces_statevector() {
        let qc = bell();
        let d_noisy = run_noisy(&qc, &NoiseModel::ideal(2)).unwrap();
        let sv = Statevector::from_circuit(&qc).unwrap();
        let d_pure = sv.measurement_distribution(&qc);
        assert!(d_noisy.tv_distance(&d_pure) < 1e-12);
    }

    #[test]
    fn realistic_noise_degrades_but_preserves_winner() {
        let qc = bell();
        let model = BackendCalibration::jakarta().noise_model();
        let d = run_noisy(&qc, &model).unwrap();
        // Wrong outcomes appear...
        assert!(d.prob_of("01") > 1e-4);
        assert!(d.prob_of("10") > 1e-4);
        // ...but Bell outcomes still dominate.
        assert!(d.prob_of("00") + d.prob_of("11") > 0.9);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_strictly_reduces_purity() {
        let qc = bell();
        let model = BackendCalibration::jakarta().noise_model();
        let rho = evolve_noisy(&qc, &model).unwrap();
        assert!(rho.purity() < 1.0 - 1e-6);
        assert!(rho.is_hermitian(1e-10));
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_noise_means_lower_fidelity() {
        let qc = bell();
        let base = BackendCalibration::jakarta();
        let d1 = run_noisy(&qc, &base.noise_model()).unwrap();
        let d3 = run_noisy(&qc, &base.scaled(5.0).noise_model()).unwrap();
        let ideal = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        assert!(d3.tv_distance(&ideal) > d1.tv_distance(&ideal));
    }

    #[test]
    fn readout_error_visible_on_deterministic_circuit() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let cal = BackendCalibration::jakarta();
        let d = run_noisy(&qc, &cal.noise_model()).unwrap();
        // p10 of qubit 0 is 3.8%; gate error adds a bit more.
        assert!(d.prob_of("0") > 0.03);
        assert!(d.prob_of("0") < 0.08);
    }

    #[test]
    fn unmeasured_circuit_returns_qubit_distribution() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0);
        let d = run_noisy(&qc, &NoiseModel::ideal(2)).unwrap();
        assert_eq!(d.num_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "noise model covers")]
    fn model_narrower_than_circuit_panics() {
        let qc = bell();
        let _ = evolve_noisy(&qc, &NoiseModel::ideal(1));
    }

    /// A four-gate noisy circuit split at every boundary: the resumed
    /// evolution must be *bit-identical* to the straight run — the exact
    /// guarantee the fork-sweep differential suite relies on.
    #[test]
    fn resumed_run_is_bit_identical_to_straight_run() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).sx(2).cx(1, 2).x(0);
        qc.measure_all();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1, 2])
            .noise_model();
        let straight = run_noisy(&qc, &model).unwrap();
        for k in 0..=qc.size() {
            let mut prefix = NoisyCursor::start(&qc, &model).unwrap();
            prefix.advance_to(&qc, k);
            let snapshot = prefix.state().snapshot();
            let mut resumed = NoisyCursor::resume(snapshot, &model, k);
            resumed.advance_to_end(&qc);
            let dist = resumed.finish(&qc);
            for i in 0..dist.len() {
                assert!(
                    dist.prob(i).to_bits() == straight.prob(i).to_bits(),
                    "split at {k}: outcome {i} differs"
                );
            }
        }
    }

    /// Forking a cursor and finishing the fork leaves the parked prefix
    /// untouched, so many faults can replay from one snapshot.
    #[test]
    fn fork_replays_do_not_mutate_the_prefix() {
        let qc = bell();
        let model = BackendCalibration::lima().restrict(&[0, 1]).noise_model();
        let mut prefix = NoisyCursor::start(&qc, &model).unwrap();
        prefix.advance_to(&qc, 1);
        let before = prefix.state().clone();
        for gate in [Gate::X, Gate::U(0.3, 1.2, 0.0)] {
            let mut fork = prefix.fork();
            fork.apply_gate(gate, &[0]);
            fork.advance_to_end(&qc);
            let _ = fork.finish(&qc);
        }
        assert_eq!(prefix.state(), &before);
        assert_eq!(prefix.position(), 1);
    }

    /// The compiled-plan path must be *bit-identical* to the per-gate
    /// model-lookup path: same gates, same channels, same order — the plan
    /// only amortizes construction.
    #[test]
    fn planned_advance_is_bit_identical_to_model_advance() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).sx(2).rz(0.4, 1).cx(1, 2).x(0);
        qc.measure_all();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1, 2])
            .noise_model();
        let plan = NoisePlan::compile(&qc, &model);
        assert_eq!(plan.size(), qc.size());
        assert_eq!(plan.num_qubits(), 3);

        for split in 0..=qc.size() {
            let mut via_model = NoisyCursor::start(&qc, &model).unwrap();
            via_model.advance_to(&qc, split);
            via_model.apply_gate(Gate::U(0.7, 1.1, 0.0), &[1]);
            via_model.advance_to_end(&qc);

            let mut via_plan = NoisyCursor::start(&qc, &model).unwrap();
            via_plan.advance_planned(&plan, split);
            via_plan.apply_planned_injector(&plan, Gate::U(0.7, 1.1, 0.0), 1);
            via_plan.advance_planned(&plan, qc.size());

            let dim = via_model.state().dim();
            for i in 0..dim {
                for j in 0..dim {
                    let (a, b) = (via_model.state().entry(i, j), via_plan.state().entry(i, j));
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "split {split}: entry ({i},{j}) differs: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "virtual rz")]
    fn planned_injector_rejects_rz() {
        let qc = bell();
        let model = NoiseModel::ideal(2);
        let plan = NoisePlan::compile(&qc, &model);
        let mut cursor = NoisyCursor::start(&qc, &model).unwrap();
        cursor.apply_planned_injector(&plan, Gate::Rz(0.3), 0);
    }

    /// The spliced-gate primitive matches inserting the same gate into the
    /// circuit and running straight — including the gate's own noise.
    #[test]
    fn spliced_gate_matches_inserted_gate() {
        let qc = bell();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1])
            .noise_model();
        let mut spliced = qc.clone();
        spliced.insert(1, Gate::U(0.7, 0.4, 0.0), &[0]);
        let straight = run_noisy(&spliced, &model).unwrap();

        let mut cursor = NoisyCursor::start(&qc, &model).unwrap();
        cursor.advance_to(&qc, 1);
        cursor.apply_gate(Gate::U(0.7, 0.4, 0.0), &[0]);
        cursor.advance_to_end(&qc);
        let forked = cursor.finish(&qc);
        for i in 0..forked.len() {
            assert_eq!(forked.prob(i).to_bits(), straight.prob(i).to_bits());
        }
    }
}
