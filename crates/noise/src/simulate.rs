//! Noisy circuit execution: the "simulation of a physical machine" scenario.
//!
//! Runs a circuit on the density-matrix engine, interleaving each gate with
//! the channels its [`NoiseModel`] prescribes, then applies readout
//! confusion before marginalizing to the classical register.

use crate::model::NoiseModel;
use crate::readout::apply_readout_errors;
use qufi_sim::circuit::Op;
use qufi_sim::{DensityMatrix, ProbDist, QuantumCircuit, SimError};

/// Evolves the density matrix of `qc` under `model`'s gate noise.
///
/// Readout error is **not** applied here (it acts on the measured
/// distribution, not the state); use [`run_noisy`] for the full pipeline.
///
/// # Errors
///
/// Returns an error when the register exceeds the density-matrix engine's
/// width limit.
///
/// # Panics
///
/// Panics if the model covers fewer qubits than the circuit uses.
pub fn evolve_noisy(qc: &QuantumCircuit, model: &NoiseModel) -> Result<DensityMatrix, SimError> {
    assert!(
        model.num_qubits() >= qc.num_qubits(),
        "noise model covers {} qubits, circuit needs {}",
        model.num_qubits(),
        qc.num_qubits()
    );
    let mut rho = DensityMatrix::new(qc.num_qubits())?;
    for op in qc.instructions() {
        if let Op::Gate { gate, qubits } = op {
            rho.apply_gate(*gate, qubits);
            for (ch, targets) in model.channels_after(*gate, qubits) {
                rho.apply_superoperator(ch.superoperator(), &targets);
            }
        }
    }
    Ok(rho)
}

/// Full noisy execution: gate noise, readout confusion, marginalization to
/// the classical register. Returns the exact output distribution.
///
/// # Errors
///
/// Returns an error when the register exceeds the engine's width limit.
pub fn run_noisy(qc: &QuantumCircuit, model: &NoiseModel) -> Result<ProbDist, SimError> {
    let rho = evolve_noisy(qc, model)?;
    let mut dist = rho.probabilities();
    dist = apply_readout_errors(&dist, model.readout_errors());
    let map = qc.measurement_map();
    Ok(if map.is_empty() {
        dist
    } else {
        dist.marginalize(&map, qc.num_clbits())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendCalibration;
    use qufi_sim::Statevector;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn ideal_model_reproduces_statevector() {
        let qc = bell();
        let d_noisy = run_noisy(&qc, &NoiseModel::ideal(2)).unwrap();
        let sv = Statevector::from_circuit(&qc).unwrap();
        let d_pure = sv.measurement_distribution(&qc);
        assert!(d_noisy.tv_distance(&d_pure) < 1e-12);
    }

    #[test]
    fn realistic_noise_degrades_but_preserves_winner() {
        let qc = bell();
        let model = BackendCalibration::jakarta().noise_model();
        let d = run_noisy(&qc, &model).unwrap();
        // Wrong outcomes appear...
        assert!(d.prob_of("01") > 1e-4);
        assert!(d.prob_of("10") > 1e-4);
        // ...but Bell outcomes still dominate.
        assert!(d.prob_of("00") + d.prob_of("11") > 0.9);
        assert!((d.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_strictly_reduces_purity() {
        let qc = bell();
        let model = BackendCalibration::jakarta().noise_model();
        let rho = evolve_noisy(&qc, &model).unwrap();
        assert!(rho.purity() < 1.0 - 1e-6);
        assert!(rho.is_hermitian(1e-10));
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_noise_means_lower_fidelity() {
        let qc = bell();
        let base = BackendCalibration::jakarta();
        let d1 = run_noisy(&qc, &base.noise_model()).unwrap();
        let d3 = run_noisy(&qc, &base.scaled(5.0).noise_model()).unwrap();
        let ideal = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        assert!(d3.tv_distance(&ideal) > d1.tv_distance(&ideal));
    }

    #[test]
    fn readout_error_visible_on_deterministic_circuit() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let cal = BackendCalibration::jakarta();
        let d = run_noisy(&qc, &cal.noise_model()).unwrap();
        // p10 of qubit 0 is 3.8%; gate error adds a bit more.
        assert!(d.prob_of("0") > 0.03);
        assert!(d.prob_of("0") < 0.08);
    }

    #[test]
    fn unmeasured_circuit_returns_qubit_distribution() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0);
        let d = run_noisy(&qc, &NoiseModel::ideal(2)).unwrap();
        assert_eq!(d.num_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "noise model covers")]
    fn model_narrower_than_circuit_panics() {
        let qc = bell();
        let _ = evolve_noisy(&qc, &NoiseModel::ideal(1));
    }
}
