//! Kraus-operator channels.
//!
//! Every channel constructor validates the completeness relation
//! `Σ Kᵢ†Kᵢ = I` so a malformed channel fails fast rather than silently
//! leaking trace during a million-injection campaign.

use qufi_math::{CMatrix, Complex};

/// A completely-positive trace-preserving (CPTP) map in Kraus form.
///
/// # Example
///
/// ```
/// use qufi_noise::KrausChannel;
///
/// let ch = KrausChannel::depolarizing(0.01, 1);
/// assert!(ch.is_cptp(1e-9));
/// assert_eq!(ch.num_qubits(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<CMatrix>,
    num_qubits: usize,
    superop: CMatrix,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators are empty, not square, of mismatched size, or
    /// violate the completeness relation by more than `1e-7`.
    pub fn from_kraus(ops: Vec<CMatrix>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        let dim = ops[0].rows();
        assert!(
            dim.is_power_of_two(),
            "Kraus dimension must be a power of two"
        );
        for k in &ops {
            assert_eq!((k.rows(), k.cols()), (dim, dim), "Kraus shape mismatch");
        }
        let num_qubits = dim.trailing_zeros() as usize;
        let superop = compute_superoperator(&ops, dim);
        let ch = KrausChannel {
            ops,
            num_qubits,
            superop,
        };
        assert!(
            ch.is_cptp(1e-7),
            "Kraus operators do not satisfy completeness"
        );
        ch
    }

    /// The identity channel on `n` qubits.
    pub fn identity(n: usize) -> Self {
        KrausChannel::from_kraus(vec![CMatrix::identity(1 << n)])
    }

    /// Depolarizing channel with error probability `p` on `n ∈ {1, 2}`
    /// qubits (Qiskit convention: with probability `p` the state is replaced
    /// by a uniformly random Pauli image, identity included):
    /// `ρ ↦ (1−p)ρ + p/4ⁿ Σ_P PρP`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` and `n ∈ {1, 2}`.
    pub fn depolarizing(p: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(n == 1 || n == 2, "depolarizing supports 1 or 2 qubits");
        let paulis_1q = [
            CMatrix::identity(2),
            CMatrix::pauli_x(),
            CMatrix::pauli_y(),
            CMatrix::pauli_z(),
        ];
        let d = 4usize.pow(n as u32) as f64;
        let mut ops = Vec::new();
        let push = |ops: &mut Vec<CMatrix>, m: CMatrix, w: f64| {
            if w > 0.0 {
                ops.push(m.scale_real(w.sqrt()));
            }
        };
        match n {
            1 => {
                for (i, pauli) in paulis_1q.iter().enumerate() {
                    let w = if i == 0 { 1.0 - p + p / d } else { p / d };
                    push(&mut ops, pauli.clone(), w);
                }
            }
            _ => {
                for (i, pa) in paulis_1q.iter().enumerate() {
                    for (j, pb) in paulis_1q.iter().enumerate() {
                        let w = if i == 0 && j == 0 {
                            1.0 - p + p / d
                        } else {
                            p / d
                        };
                        push(&mut ops, pa.kron(pb), w);
                    }
                }
            }
        }
        KrausChannel::from_kraus(ops)
    }

    /// Amplitude damping with decay probability `γ` (spontaneous `|1⟩→|0⟩`
    /// relaxation — the T1 process).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ γ ≤ 1`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let k0 = CMatrix::from_2x2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real((1.0 - gamma).sqrt()),
        );
        let k1 = CMatrix::from_2x2(
            Complex::ZERO,
            Complex::real(gamma.sqrt()),
            Complex::ZERO,
            Complex::ZERO,
        );
        KrausChannel::from_kraus(vec![k0, k1])
    }

    /// Phase damping with dephasing probability `λ` (loss of coherence
    /// without energy exchange — the pure-T2 process).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ λ ≤ 1`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        let k0 = CMatrix::from_2x2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real((1.0 - lambda).sqrt()),
        );
        let k1 = CMatrix::from_2x2(
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(lambda.sqrt()),
        );
        KrausChannel::from_kraus(vec![k0, k1])
    }

    /// Thermal relaxation over duration `time` for a qubit with the given
    /// `t1`/`t2` constants (zero-temperature limit: the excited-state
    /// population relaxes toward `|0⟩`).
    ///
    /// This composes amplitude damping `γ₁ = 1 − e^{−t/T1}` with pure
    /// dephasing `γ_φ = 1 − e^{−2t/T_φ}` where `1/T_φ = 1/T2 − 1/(2·T1)`,
    /// the standard decomposition for `T2 ≤ 2·T1`; the net coherence decay
    /// is exactly `e^{−t/T2}` and the population decay exactly `e^{−t/T1}`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= 0`, `t2 <= 0`, `time < 0` or `t2 > 2·t1`.
    pub fn thermal_relaxation(t1: f64, t2: f64, time: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "T1/T2 must be positive");
        assert!(time >= 0.0, "negative duration");
        assert!(t2 <= 2.0 * t1 + 1e-12, "T2 must not exceed 2*T1");
        let gamma1 = 1.0 - (-time / t1).exp();
        // Pure dephasing rate; zero when T2 == 2*T1 exactly.
        let inv_tphi = (1.0 / t2 - 1.0 / (2.0 * t1)).max(0.0);
        // Phase damping λ scales coherences by √(1−λ); choosing
        // λ = 1 − e^{−2t/Tφ} makes the composed decay e^{−t/T2}.
        let gamma_phi = 1.0 - (-2.0 * time * inv_tphi).exp();
        KrausChannel::amplitude_damping(gamma1).compose(&KrausChannel::phase_damping(gamma_phi))
    }

    /// Pauli channel `ρ ↦ (1−px−py−pz)ρ + px·XρX + py·YρY + pz·ZρZ`.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are negative or sum above 1.
    pub fn pauli(px: f64, py: f64, pz: f64) -> Self {
        assert!(px >= 0.0 && py >= 0.0 && pz >= 0.0, "negative probability");
        let pi = 1.0 - px - py - pz;
        assert!(pi >= -1e-12, "Pauli probabilities exceed 1");
        let mut ops = Vec::new();
        for (m, w) in [
            (CMatrix::identity(2), pi.max(0.0)),
            (CMatrix::pauli_x(), px),
            (CMatrix::pauli_y(), py),
            (CMatrix::pauli_z(), pz),
        ] {
            if w > 0.0 {
                ops.push(m.scale_real(w.sqrt()));
            }
        }
        KrausChannel::from_kraus(ops)
    }

    /// Bit-flip channel (`X` with probability `p`).
    pub fn bit_flip(p: f64) -> Self {
        KrausChannel::pauli(p, 0.0, 0.0)
    }

    /// Phase-flip channel (`Z` with probability `p`).
    pub fn phase_flip(p: f64) -> Self {
        KrausChannel::pauli(0.0, 0.0, p)
    }

    /// Sequential composition: `other ∘ self` (apply `self` first). The
    /// result's Kraus set is the pairwise product set.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn compose(&self, other: &KrausChannel) -> KrausChannel {
        assert_eq!(self.num_qubits, other.num_qubits, "channel width mismatch");
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for b in &other.ops {
            for a in &self.ops {
                let prod = b.matmul(a);
                // Drop numerically-zero operators to keep the set small.
                if prod.frobenius_norm() > 1e-12 {
                    ops.push(prod);
                }
            }
        }
        KrausChannel::from_kraus(ops)
    }

    /// The Kraus operators.
    #[inline]
    pub fn kraus_operators(&self) -> &[CMatrix] {
        &self.ops
    }

    /// The precomputed superoperator `S[(a,b),(c,d)] = Σₖ Kₖ[a,c]·K̄ₖ[b,d]`,
    /// consumable by [`qufi_sim::DensityMatrix::apply_superoperator`].
    #[inline]
    pub fn superoperator(&self) -> &CMatrix {
        &self.superop
    }

    /// Number of qubits the channel acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Verifies `Σ K†K ≈ I` within `tol`.
    pub fn is_cptp(&self, tol: f64) -> bool {
        let dim = 1usize << self.num_qubits;
        let mut acc = CMatrix::zeros(dim, dim);
        for k in &self.ops {
            acc = acc.add(&k.adjoint().matmul(k));
        }
        acc.approx_eq(&CMatrix::identity(dim), tol)
    }

    /// `true` when the channel is (numerically) the identity map.
    pub fn is_identity(&self, tol: f64) -> bool {
        let dim = 1usize << self.num_qubits;
        self.ops.len() == 1 && {
            let k = &self.ops[0];
            k.approx_eq_up_to_phase(&CMatrix::identity(dim), tol)
        }
    }
}

/// Builds `S[(a,b),(c,d)] = Σₖ Kₖ[a,c]·K̄ₖ[b,d]` over vectorized indices
/// `a·dim + b` / `c·dim + d`.
fn compute_superoperator(ops: &[CMatrix], dim: usize) -> CMatrix {
    let mut s = CMatrix::zeros(dim * dim, dim * dim);
    for k in ops {
        for a in 0..dim {
            for c in 0..dim {
                let kac = k[(a, c)];
                if kac == Complex::ZERO {
                    continue;
                }
                for b in 0..dim {
                    for d in 0..dim {
                        s[(a * dim + b, c * dim + d)] += kac * k[(b, d)].conj();
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::DensityMatrix;

    #[test]
    fn all_builtin_channels_are_cptp() {
        for ch in [
            KrausChannel::identity(1),
            KrausChannel::depolarizing(0.0, 1),
            KrausChannel::depolarizing(0.3, 1),
            KrausChannel::depolarizing(1.0, 1),
            KrausChannel::depolarizing(0.05, 2),
            KrausChannel::amplitude_damping(0.2),
            KrausChannel::phase_damping(0.7),
            KrausChannel::thermal_relaxation(100e-6, 80e-6, 50e-9),
            KrausChannel::pauli(0.1, 0.05, 0.2),
            KrausChannel::bit_flip(0.25),
            KrausChannel::phase_flip(0.5),
        ] {
            assert!(ch.is_cptp(1e-9));
        }
    }

    #[test]
    fn zero_strength_channels_act_as_identity() {
        let mut a = DensityMatrix::new(1).unwrap();
        a.apply_gate(qufi_sim::Gate::H, &[0]);
        let before = a.clone();
        a.apply_kraus(KrausChannel::depolarizing(0.0, 1).kraus_operators(), &[0]);
        a.apply_kraus(KrausChannel::amplitude_damping(0.0).kraus_operators(), &[0]);
        a.apply_kraus(
            KrausChannel::thermal_relaxation(1.0, 1.0, 0.0).kraus_operators(),
            &[0],
        );
        assert!(a.probabilities().tv_distance(&before.probabilities()).abs() < 1e-12);
        assert!((a.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_amplitude_damping_resets_to_ground() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(qufi_sim::Gate::X, &[0]);
        rho.apply_kraus(KrausChannel::amplitude_damping(1.0).kraus_operators(), &[0]);
        assert!((rho.probabilities().prob(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thermal_relaxation_limits() {
        // Long time: everything relaxes to |0>.
        let ch = KrausChannel::thermal_relaxation(50e-6, 70e-6, 10.0);
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(qufi_sim::Gate::X, &[0]);
        rho.apply_kraus(ch.kraus_operators(), &[0]);
        assert!((rho.probabilities().prob(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_relaxation_population_decay_rate() {
        // After time t, excited population should be exactly e^{-t/T1}.
        let (t1, t2, t) = (100e-6, 120e-6, 30e-6);
        let ch = KrausChannel::thermal_relaxation(t1, t2, t);
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(qufi_sim::Gate::X, &[0]);
        rho.apply_kraus(ch.kraus_operators(), &[0]);
        let expect = (-t / t1).exp();
        assert!((rho.probabilities().prob(1) - expect).abs() < 1e-9);
    }

    #[test]
    fn thermal_relaxation_coherence_decay_rate() {
        // Off-diagonal of |+><+| decays as e^{-t/T2}.
        let (t1, t2, t) = (80e-6, 60e-6, 25e-6);
        let ch = KrausChannel::thermal_relaxation(t1, t2, t);
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(qufi_sim::Gate::H, &[0]);
        rho.apply_kraus(ch.kraus_operators(), &[0]);
        let coherence = rho.entry(0, 1).norm();
        let expect = 0.5 * (-t / t2).exp();
        assert!(
            (coherence - expect).abs() < 1e-9,
            "coherence {coherence} vs {expect}"
        );
    }

    #[test]
    fn depolarizing_one_converges_to_maximally_mixed() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_kraus(KrausChannel::depolarizing(1.0, 1).kraus_operators(), &[0]);
        assert!((rho.probabilities().prob(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_has_16_paulis() {
        let ch = KrausChannel::depolarizing(0.5, 2);
        assert_eq!(ch.kraus_operators().len(), 16);
        assert_eq!(ch.num_qubits(), 2);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = KrausChannel::amplitude_damping(0.3);
        let b = KrausChannel::phase_damping(0.4);
        let composed = a.compose(&b);

        let mut r1 = DensityMatrix::new(1).unwrap();
        r1.apply_gate(qufi_sim::Gate::H, &[0]);
        let mut r2 = r1.clone();

        r1.apply_kraus(a.kraus_operators(), &[0]);
        r1.apply_kraus(b.kraus_operators(), &[0]);
        r2.apply_kraus(composed.kraus_operators(), &[0]);

        for i in 0..2 {
            for j in 0..2 {
                assert!(r1.entry(i, j).approx_eq(r2.entry(i, j), 1e-10));
            }
        }
    }

    #[test]
    #[should_panic(expected = "T2 must not exceed")]
    fn t2_bound_enforced() {
        let _ = KrausChannel::thermal_relaxation(10e-6, 30e-6, 1e-6);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn non_cptp_rejected() {
        let _ = KrausChannel::from_kraus(vec![CMatrix::hadamard().scale_real(0.5)]);
    }

    #[test]
    fn cached_superoperator_matches_kraus_application() {
        for ch in [
            KrausChannel::depolarizing(0.07, 1),
            KrausChannel::thermal_relaxation(90e-6, 60e-6, 400e-9),
            KrausChannel::depolarizing(0.02, 2),
        ] {
            let mut qc = qufi_sim::QuantumCircuit::new(2, 0);
            qc.h(0).cx(0, 1).t(1);
            let mut r1 = DensityMatrix::new(2).unwrap();
            r1.run_circuit(&qc);
            let mut r2 = r1.clone();
            let targets: Vec<usize> = (0..ch.num_qubits()).collect();
            r1.apply_kraus(ch.kraus_operators(), &targets);
            r2.apply_superoperator(ch.superoperator(), &targets);
            for i in 0..4 {
                for j in 0..4 {
                    assert!(r1.entry(i, j).approx_eq(r2.entry(i, j), 1e-12));
                }
            }
        }
    }

    #[test]
    fn identity_detection() {
        assert!(KrausChannel::identity(1).is_identity(1e-12));
        assert!(!KrausChannel::bit_flip(0.1).is_identity(1e-12));
    }
}
