//! Quantum noise modeling for the QuFI reproduction.
//!
//! The paper injects faults "over the intrinsic noise of current quantum
//! computers" (§V-B), using IBM-Q noise models inside Qiskit Aer. This crate
//! provides the equivalent machinery:
//!
//! * [`KrausChannel`] — completely-positive trace-preserving maps:
//!   depolarizing, amplitude/phase damping, thermal relaxation (T1/T2),
//!   Pauli channels.
//! * [`ReadoutError`] — per-qubit measurement confusion matrices.
//! * [`NoiseModel`] — maps each gate application to the channels that follow
//!   it (depolarizing gate error + thermal relaxation for the gate duration),
//!   plus readout errors on measurement.
//! * [`BackendCalibration`] — synthetic per-qubit calibration tables for
//!   IBM-like 5- and 7-qubit devices (Jakarta, Casablanca, Lima, Bogota),
//!   with magnitudes drawn from published Falcon-processor data, and a
//!   [`BackendCalibration::with_drift`] method that models the day-to-day
//!   calibration drift the paper mentions ("the noise is not static", §V-E).
//! * [`simulate`] — a noisy density-matrix runner: gate → unitary, then
//!   noise channels; measurement → readout confusion.
//! * [`trajectory`] — the Monte-Carlo statevector counterpart: per-shot
//!   Kraus-branch sampling that trades the density path's `4^n` cost for
//!   an `O(1/√shots)` statistical error, opening 10–14-qubit campaigns.
//!
//! # Example
//!
//! ```
//! use qufi_noise::{BackendCalibration, simulate};
//! use qufi_sim::QuantumCircuit;
//!
//! let cal = BackendCalibration::jakarta();
//! let model = cal.noise_model();
//! let mut qc = QuantumCircuit::new(2, 2);
//! qc.h(0).cx(0, 1).measure_all();
//! let dist = simulate::run_noisy(&qc, &model).unwrap();
//! // Noise leaks probability into the "wrong" outcomes…
//! assert!(dist.prob_of("01") > 0.0);
//! // …but the Bell outcomes still dominate.
//! assert!(dist.prob_of("00") + dist.prob_of("11") > 0.9);
//! ```

pub mod backend;
pub mod channel;
pub mod coherent;
pub mod mitigation;
pub mod model;
pub mod readout;
pub mod simulate;
pub mod trajectory;

pub use backend::{BackendCalibration, GateTimes, QubitCalibration, BUILTIN_BACKENDS};
pub use channel::KrausChannel;
pub use coherent::CoherentError;
pub use mitigation::mitigate_readout;
pub use model::NoiseModel;
pub use readout::ReadoutError;
pub use simulate::{NoisePlan, NoisyCursor};
pub use trajectory::{
    finish_trajectory_dist, run_trajectories, ShotAccumulator, TrajPlan, TrajWorkspace,
    TrajectoryCursor, SHOT_BLOCK,
};
