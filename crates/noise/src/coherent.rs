//! Coherent (systematic) error models.
//!
//! Stochastic Kraus channels capture *incoherent* noise; real devices also
//! suffer **coherent** errors — systematic over/under-rotations from
//! miscalibrated pulses. Coherent errors matter for fault injection because
//! they compose with the injected phase shift instead of averaging out, and
//! the paper's fault model (a deterministic `U(θ,φ,0)` shift) is itself a
//! coherent perturbation. This module expresses per-gate coherent errors so
//! ablations can compare fault propagation over coherent vs incoherent
//! noise floors.

use qufi_math::CMatrix;
use qufi_sim::circuit::Op;
use qufi_sim::{Gate, QuantumCircuit};

/// A systematic per-gate rotation error: every occurrence of a gate class
/// is followed by a small fixed rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoherentError {
    /// Extra rotation about X after each `sx`/`x` pulse (radians).
    pub over_rotation_x: f64,
    /// Extra rotation about Z after every 1-qubit gate (phase miscalibration).
    pub phase_drift_z: f64,
    /// Extra ZZ-like phase after each 2-qubit gate, expressed as a CP angle.
    pub two_qubit_phase: f64,
}

impl CoherentError {
    /// No coherent error.
    pub fn none() -> Self {
        CoherentError {
            over_rotation_x: 0.0,
            phase_drift_z: 0.0,
            two_qubit_phase: 0.0,
        }
    }

    /// A typical miscalibration magnitude: 0.5° over-rotation, 0.2° phase
    /// drift, 1° residual ZZ phase.
    pub fn typical() -> Self {
        CoherentError {
            over_rotation_x: 0.5_f64.to_radians(),
            phase_drift_z: 0.2_f64.to_radians(),
            two_qubit_phase: 1.0_f64.to_radians(),
        }
    }

    /// `true` when all magnitudes are zero.
    pub fn is_none(&self) -> bool {
        self.over_rotation_x == 0.0 && self.phase_drift_z == 0.0 && self.two_qubit_phase == 0.0
    }

    /// Rewrites a circuit with the systematic errors appended after each
    /// gate. The result is still a pure circuit: coherent noise is unitary.
    pub fn apply_to_circuit(&self, qc: &QuantumCircuit) -> QuantumCircuit {
        let mut out = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
        for op in qc.instructions() {
            match op {
                Op::Gate { gate, qubits } => {
                    out.append(*gate, qubits);
                    if self.is_none() {
                        continue;
                    }
                    match qubits.len() {
                        1 => {
                            // rz is virtual — no pulse, no miscalibration.
                            if matches!(gate, Gate::Rz(_) | Gate::P(_) | Gate::I) {
                                continue;
                            }
                            if self.over_rotation_x != 0.0
                                && matches!(gate, Gate::Sx | Gate::Sxdg | Gate::X)
                            {
                                out.rx(self.over_rotation_x, qubits[0]);
                            }
                            if self.phase_drift_z != 0.0 {
                                out.rz(self.phase_drift_z, qubits[0]);
                            }
                        }
                        2 if self.two_qubit_phase != 0.0 => {
                            out.cp(self.two_qubit_phase, qubits[0], qubits[1]);
                        }
                        _ => {}
                    }
                }
                Op::Barrier(qs) => {
                    out.barrier(qs);
                }
                Op::Measure { qubit, clbit } => {
                    out.measure(*qubit, *clbit);
                }
            }
        }
        out
    }

    /// The effective single-`sx` unitary under this miscalibration
    /// (useful for analytic checks).
    pub fn effective_sx(&self) -> CMatrix {
        let mut m = CMatrix::sx();
        if self.over_rotation_x != 0.0 {
            m = CMatrix::rx(self.over_rotation_x).matmul(&m);
        }
        if self.phase_drift_z != 0.0 {
            m = CMatrix::rz(self.phase_drift_z).matmul(&m);
        }
        m
    }
}

impl Default for CoherentError {
    fn default() -> Self {
        CoherentError::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    #[test]
    fn none_is_identity_transform() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let out = CoherentError::none().apply_to_circuit(&qc);
        assert_eq!(out, qc);
    }

    #[test]
    fn typical_error_perturbs_output_slightly() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.sx(0).sx(0).cx(0, 1).measure_all(); // sx·sx = X up to phase
        let noisy = CoherentError::typical().apply_to_circuit(&qc);
        let a = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let b = Statevector::from_circuit(&noisy)
            .unwrap()
            .measurement_distribution(&noisy);
        let tv = a.tv_distance(&b);
        assert!(tv > 1e-6, "coherent error must be visible");
        assert!(tv < 0.05, "typical miscalibration should stay small: {tv}");
    }

    #[test]
    fn coherent_errors_accumulate_linearly_in_depth() {
        // The hallmark of coherent (vs incoherent) error: amplitude errors
        // add up coherently, so N repetitions drift ~N× further.
        let build = |reps: usize| {
            let mut qc = QuantumCircuit::new(1, 1);
            for _ in 0..reps {
                qc.sx(0);
                qc.sx(0);
                qc.sx(0);
                qc.sx(0); // sx^4 = I up to phase
            }
            qc.measure(0, 0);
            qc
        };
        let err = CoherentError {
            over_rotation_x: 0.02,
            phase_drift_z: 0.0,
            two_qubit_phase: 0.0,
        };
        let drift = |reps: usize| {
            let qc = build(reps);
            let noisy = err.apply_to_circuit(&qc);
            let d = Statevector::from_circuit(&noisy)
                .unwrap()
                .measurement_distribution(&noisy);
            d.prob(1) // leakage out of |0⟩
        };
        let d1 = drift(1);
        let d4 = drift(4);
        // Rotation angle scales ×4 → small-angle probability scales ~×16.
        assert!(d4 > 10.0 * d1, "d1={d1:.2e}, d4={d4:.2e}");
    }

    #[test]
    fn rz_is_untouched() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.rz(0.5, 0);
        let out = CoherentError::typical().apply_to_circuit(&qc);
        assert_eq!(out.gate_count(), 1);
    }

    #[test]
    fn two_qubit_phase_attaches_to_cx() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cx(0, 1);
        let out = CoherentError::typical().apply_to_circuit(&qc);
        assert_eq!(out.gate_count(), 2);
        let names: Vec<&str> = out
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Gate { gate, .. } => Some(gate.name()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["cx", "cp"]);
    }

    #[test]
    fn effective_sx_is_unitary_and_near_sx() {
        let eff = CoherentError::typical().effective_sx();
        assert!(eff.is_unitary(1e-12));
        let diff = eff.sub(&CMatrix::sx()).frobenius_norm();
        assert!(diff > 1e-6 && diff < 0.05, "diff {diff}");
    }
}
