//! Synthetic backend calibration data.
//!
//! The paper runs on IBM-Q machines (Jakarta for the hardware experiment,
//! Casablanca for the topology discussion) whose daily calibration data feeds
//! the Aer noise model. Real calibration tables are not redistributable, so
//! this module ships **synthetic** tables whose magnitudes follow published
//! IBM Falcon r5.11 figures: T1 ≈ 100–180 µs, T2 ≈ 20–140 µs, single-qubit
//! error ≈ 2–4·10⁻⁴, CX error ≈ 6·10⁻³–1.2·10⁻², readout error 1–4%.
//! See DESIGN.md §4 for the substitution rationale.

use crate::model::{NoiseModel, QubitNoiseSpec};
use crate::readout::ReadoutError;
use rand::Rng;

/// Gate durations in seconds (uniform across qubits, as on IBM backends to
/// first order).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateTimes {
    /// Single-qubit gate (sx/x/u) duration.
    pub one_q: f64,
    /// Two-qubit (cx) duration.
    pub two_q: f64,
    /// Measurement duration.
    pub readout: f64,
}

impl Default for GateTimes {
    fn default() -> Self {
        GateTimes {
            one_q: 35.5e-9,
            two_q: 450e-9,
            readout: 5.35e-6,
        }
    }
}

/// Calibration of a single physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QubitCalibration {
    /// T1 in seconds.
    pub t1: f64,
    /// T2 in seconds.
    pub t2: f64,
    /// Depolarizing error per calibrated single-qubit gate.
    pub gate_error_1q: f64,
    /// P(read 1 | prepared 0).
    pub readout_p01: f64,
    /// P(read 0 | prepared 1).
    pub readout_p10: f64,
}

/// A device calibration snapshot: qubits, coupling map and CX error rates.
///
/// # Example
///
/// ```
/// use qufi_noise::BackendCalibration;
///
/// let cal = BackendCalibration::jakarta();
/// assert_eq!(cal.num_qubits(), 7);
/// assert!(cal.coupling().contains(&(5, 6)));
/// let model = cal.noise_model();
/// assert!(!model.is_ideal());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BackendCalibration {
    /// Device name, e.g. `"ibmq_jakarta"`.
    pub name: String,
    /// Per-qubit calibration, indexed by physical qubit.
    pub qubits: Vec<QubitCalibration>,
    /// Undirected coupling edges `(min, max)`.
    pub coupling: Vec<(usize, usize)>,
    /// CX depolarizing error per edge (same key order as `coupling`).
    pub cx_errors: Vec<f64>,
    /// Gate durations.
    pub times: GateTimes,
}

/// Builds one qubit's calibration from raw microsecond/percent figures.
fn qubit(t1_us: f64, t2_us: f64, err_1q: f64, p01: f64, p10: f64) -> QubitCalibration {
    QubitCalibration {
        t1: t1_us * 1e-6,
        t2: t2_us * 1e-6,
        gate_error_1q: err_1q,
        readout_p01: p01,
        readout_p10: p10,
    }
}

/// Short names of the built-in synthetic calibrations, resolvable by
/// [`BackendCalibration::named`] — the catalogue behind `qufi list
/// backends` and campaign-manifest `backends = [...]` entries.
pub const BUILTIN_BACKENDS: &[&str] = &["jakarta", "casablanca", "lima", "bogota", "guadalupe"];

impl BackendCalibration {
    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Resolves a built-in calibration by name. Accepts the short form
    /// (`"jakarta"`) and the full device name (`"ibmq_jakarta"`),
    /// case-insensitively; `None` for anything else.
    pub fn named(name: &str) -> Option<BackendCalibration> {
        let key = name.trim().to_ascii_lowercase();
        match key.strip_prefix("ibmq_").unwrap_or(&key) {
            "jakarta" => Some(Self::jakarta()),
            "casablanca" => Some(Self::casablanca()),
            "lima" => Some(Self::lima()),
            "bogota" => Some(Self::bogota()),
            "guadalupe" => Some(Self::guadalupe()),
            _ => None,
        }
    }

    /// The short names [`Self::named`] resolves.
    pub fn builtin_names() -> &'static [&'static str] {
        BUILTIN_BACKENDS
    }

    /// The undirected coupling edges.
    pub fn coupling(&self) -> &[(usize, usize)] {
        &self.coupling
    }

    /// Synthetic 7-qubit device with the IBM Falcon r5.11H "H" topology
    /// used by Jakarta (the paper's hardware target, §V-E).
    ///
    /// ```text
    /// 0 - 1 - 2
    ///     |
    ///     3
    ///     |
    /// 4 - 5 - 6
    /// ```
    pub fn jakarta() -> Self {
        BackendCalibration {
            name: "ibmq_jakarta".into(),
            qubits: vec![
                qubit(182.0, 43.5, 2.3e-4, 0.022, 0.038),
                qubit(171.4, 67.2, 2.9e-4, 0.018, 0.031),
                qubit(115.8, 23.9, 2.1e-4, 0.025, 0.044),
                qubit(97.6, 40.3, 3.2e-4, 0.031, 0.052),
                qubit(126.2, 33.8, 2.4e-4, 0.016, 0.029),
                qubit(140.9, 62.5, 2.7e-4, 0.020, 0.034),
                qubit(133.1, 30.7, 2.0e-4, 0.027, 0.046),
            ],
            coupling: vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)],
            cx_errors: vec![7.7e-3, 6.4e-3, 9.9e-3, 7.2e-3, 6.9e-3, 8.4e-3],
            times: GateTimes::default(),
        }
    }

    /// Synthetic 7-qubit Casablanca device (same "H" topology as Jakarta —
    /// the machine shown in the paper's Fig. 1).
    pub fn casablanca() -> Self {
        BackendCalibration {
            name: "ibmq_casablanca".into(),
            qubits: vec![
                qubit(104.1, 135.6, 2.6e-4, 0.024, 0.041),
                qubit(131.7, 87.3, 2.2e-4, 0.019, 0.033),
                qubit(161.9, 119.4, 3.1e-4, 0.022, 0.037),
                qubit(121.4, 140.2, 2.5e-4, 0.028, 0.048),
                qubit(88.6, 26.4, 2.9e-4, 0.017, 0.030),
                qubit(145.3, 71.8, 2.3e-4, 0.023, 0.040),
                qubit(109.8, 51.1, 2.8e-4, 0.026, 0.043),
            ],
            coupling: vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)],
            cx_errors: vec![9.1e-3, 7.3e-3, 1.12e-2, 8.0e-3, 7.6e-3, 1.04e-2],
            times: GateTimes::default(),
        }
    }

    /// Synthetic 5-qubit Lima device (T-shaped Falcon r4T topology).
    pub fn lima() -> Self {
        BackendCalibration {
            name: "ibmq_lima".into(),
            qubits: vec![
                qubit(118.3, 151.2, 2.4e-4, 0.021, 0.036),
                qubit(137.5, 104.7, 2.1e-4, 0.018, 0.032),
                qubit(95.9, 110.3, 2.8e-4, 0.029, 0.050),
                qubit(152.6, 84.9, 2.2e-4, 0.020, 0.035),
                qubit(26.4, 21.7, 3.5e-4, 0.035, 0.058),
            ],
            coupling: vec![(0, 1), (1, 2), (1, 3), (3, 4)],
            cx_errors: vec![6.1e-3, 8.7e-3, 7.0e-3, 1.19e-2],
            times: GateTimes::default(),
        }
    }

    /// Synthetic 5-qubit Bogota device (linear Falcon r4L topology).
    pub fn bogota() -> Self {
        BackendCalibration {
            name: "ibmq_bogota".into(),
            qubits: vec![
                qubit(102.7, 146.8, 2.0e-4, 0.019, 0.030),
                qubit(88.2, 122.5, 2.6e-4, 0.023, 0.039),
                qubit(129.4, 153.0, 2.3e-4, 0.017, 0.028),
                qubit(144.0, 96.1, 2.5e-4, 0.025, 0.042),
                qubit(111.6, 132.3, 2.9e-4, 0.030, 0.047),
            ],
            coupling: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            cx_errors: vec![6.8e-3, 7.9e-3, 6.3e-3, 9.2e-3],
            times: GateTimes::default(),
        }
    }

    /// Synthetic 16-qubit Guadalupe device (Falcon r4P heavy-hex cell) —
    /// the width target of the trajectory executor, far past the
    /// density-matrix engine's practical ceiling.
    ///
    /// ```text
    ///  0 -  1 -  2 -  3
    ///       |         |
    ///       4         5
    ///       |         |
    ///  6 -  7         8 -  9
    ///       |         |
    ///      10        11
    ///       |         |
    /// 15 - 12 - 13 - 14
    /// ```
    pub fn guadalupe() -> Self {
        BackendCalibration {
            name: "ibmq_guadalupe".into(),
            qubits: vec![
                qubit(121.5, 89.4, 2.4e-4, 0.021, 0.035),
                qubit(98.7, 112.6, 2.8e-4, 0.025, 0.042),
                qubit(143.2, 54.8, 2.1e-4, 0.018, 0.031),
                qubit(110.9, 131.7, 3.0e-4, 0.029, 0.049),
                qubit(156.3, 77.2, 2.3e-4, 0.016, 0.028),
                qubit(89.1, 98.5, 3.3e-4, 0.032, 0.054),
                qubit(134.6, 45.9, 2.2e-4, 0.020, 0.033),
                qubit(117.4, 124.1, 2.6e-4, 0.023, 0.038),
                qubit(102.8, 66.3, 2.9e-4, 0.027, 0.045),
                qubit(148.0, 105.2, 2.0e-4, 0.017, 0.029),
                qubit(95.5, 83.7, 3.1e-4, 0.030, 0.051),
                qubit(127.3, 139.8, 2.5e-4, 0.022, 0.036),
                qubit(139.9, 59.1, 2.3e-4, 0.019, 0.032),
                qubit(106.2, 117.9, 2.7e-4, 0.026, 0.044),
                qubit(151.7, 72.6, 2.2e-4, 0.018, 0.030),
                qubit(92.4, 101.3, 3.2e-4, 0.031, 0.052),
            ],
            coupling: vec![
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
            cx_errors: vec![
                7.4e-3, 6.8e-3, 9.2e-3, 7.9e-3, 1.08e-2, 6.5e-3, 8.8e-3, 7.1e-3, 9.6e-3, 6.2e-3,
                8.1e-3, 7.7e-3, 1.15e-2, 6.9e-3, 8.5e-3, 7.3e-3,
            ],
            times: GateTimes::default(),
        }
    }

    /// Compiles this calibration into a [`NoiseModel`].
    pub fn noise_model(&self) -> NoiseModel {
        let specs: Vec<QubitNoiseSpec> = self
            .qubits
            .iter()
            .map(|q| QubitNoiseSpec {
                t1: q.t1,
                t2: q.t2,
                gate_error_1q: q.gate_error_1q,
                readout: ReadoutError::new(q.readout_p01, q.readout_p10),
            })
            .collect();
        let cx: Vec<((usize, usize), f64)> = self
            .coupling
            .iter()
            .copied()
            .zip(self.cx_errors.iter().copied())
            .collect();
        NoiseModel::from_specs(&specs, &cx, self.times.one_q, self.times.two_q)
    }

    /// Returns a copy with all error magnitudes scaled by `factor`
    /// (T1/T2 scale inversely). Useful for noise-sensitivity ablations.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    pub fn scaled(&self, factor: f64) -> BackendCalibration {
        assert!(factor >= 0.0, "negative noise scale");
        let mut out = self.clone();
        let f = factor.max(1e-9);
        for q in &mut out.qubits {
            q.t1 /= f;
            q.t2 = (q.t2 / f).min(2.0 * q.t1);
            q.gate_error_1q = (q.gate_error_1q * factor).min(1.0);
            q.readout_p01 = (q.readout_p01 * factor).min(1.0);
            q.readout_p10 = (q.readout_p10 * factor).min(1.0);
        }
        for e in &mut out.cx_errors {
            *e = (*e * factor).min(1.0);
        }
        out
    }

    /// Restricts the calibration to a subset of physical qubits, remapping
    /// them to `0..subset.len()` in the given order. Edges with an endpoint
    /// outside the subset are dropped.
    ///
    /// Simulators use this to shrink the density matrix to the qubits a
    /// transpiled circuit actually touches.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains duplicates or out-of-range qubits.
    pub fn restrict(&self, subset: &[usize]) -> BackendCalibration {
        let mut remap = vec![None; self.num_qubits()];
        for (new, &old) in subset.iter().enumerate() {
            assert!(old < self.num_qubits(), "qubit {old} out of range");
            assert!(remap[old].is_none(), "duplicate qubit {old} in subset");
            remap[old] = Some(new);
        }
        let qubits = subset.iter().map(|&q| self.qubits[q]).collect();
        let mut coupling = Vec::new();
        let mut cx_errors = Vec::new();
        for (&(a, b), &err) in self.coupling.iter().zip(&self.cx_errors) {
            if let (Some(na), Some(nb)) = (remap[a], remap[b]) {
                coupling.push((na.min(nb), na.max(nb)));
                cx_errors.push(err);
            }
        }
        BackendCalibration {
            name: format!("{}[{}q]", self.name, subset.len()),
            qubits,
            coupling,
            cx_errors,
            times: self.times,
        }
    }

    /// A calibration-drifted copy, modeling day-to-day variation of a real
    /// device ("the noise is not static and may slightly change the state
    /// probability distribution", §V-E). Each parameter is multiplied by
    /// `e^{σ·N(0,1)}` with `σ = rel_sigma`, respecting physical constraints.
    pub fn with_drift<R: Rng + ?Sized>(&self, rng: &mut R, rel_sigma: f64) -> BackendCalibration {
        let mut out = self.clone();
        let jitter = |rng: &mut R, v: f64, lo: f64, hi: f64| -> f64 {
            // Box-Muller for a standard normal using only the Rng trait.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (v * (rel_sigma * n).exp()).clamp(lo, hi)
        };
        for q in &mut out.qubits {
            q.t1 = jitter(rng, q.t1, 5e-6, 1e-3);
            q.t2 = jitter(rng, q.t2, 5e-6, 2.0 * q.t1);
            q.gate_error_1q = jitter(rng, q.gate_error_1q, 1e-6, 0.1);
            q.readout_p01 = jitter(rng, q.readout_p01, 1e-4, 0.3);
            q.readout_p10 = jitter(rng, q.readout_p10, 1e-4, 0.3);
        }
        for e in &mut out.cx_errors {
            *e = jitter(rng, *e, 1e-5, 0.3);
        }
        out.name = format!("{}+drift", self.name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn builtin_devices_are_well_formed() {
        for cal in [
            BackendCalibration::jakarta(),
            BackendCalibration::casablanca(),
            BackendCalibration::lima(),
            BackendCalibration::bogota(),
            BackendCalibration::guadalupe(),
        ] {
            assert_eq!(cal.cx_errors.len(), cal.coupling.len());
            for q in &cal.qubits {
                assert!(q.t1 > 0.0 && q.t2 > 0.0);
                assert!(q.t2 <= 2.0 * q.t1 + 1e-12, "{}: T2 > 2*T1", cal.name);
                assert!(q.gate_error_1q < 1e-2);
                assert!(q.readout_p01 < 0.1 && q.readout_p10 < 0.1);
            }
            for &(a, b) in &cal.coupling {
                assert!(a < b && b < cal.num_qubits());
            }
            // The noise model compiles.
            let m = cal.noise_model();
            assert_eq!(m.num_qubits(), cal.num_qubits());
            assert!(!m.is_ideal());
        }
    }

    #[test]
    fn named_resolves_every_builtin_and_rejects_strangers() {
        for &name in BackendCalibration::builtin_names() {
            let cal = BackendCalibration::named(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(cal.name.contains(name));
            // Full device name and odd casing also resolve.
            assert_eq!(BackendCalibration::named(&cal.name), Some(cal.clone()));
            assert_eq!(
                BackendCalibration::named(&name.to_ascii_uppercase()),
                Some(cal)
            );
        }
        assert_eq!(BackendCalibration::named("ibmq_nowhere"), None);
    }

    #[test]
    fn jakarta_and_casablanca_share_topology() {
        assert_eq!(
            BackendCalibration::jakarta().coupling,
            BackendCalibration::casablanca().coupling
        );
    }

    #[test]
    fn drift_changes_values_but_respects_bounds() {
        let cal = BackendCalibration::jakarta();
        let mut rng = SmallRng::seed_from_u64(99);
        let drifted = cal.with_drift(&mut rng, 0.1);
        assert_ne!(cal.qubits[0].t1, drifted.qubits[0].t1);
        for q in &drifted.qubits {
            assert!(q.t2 <= 2.0 * q.t1 + 1e-12);
        }
        // Drift is modest: within a factor of ~2 at sigma=0.1.
        for (a, b) in cal.qubits.iter().zip(&drifted.qubits) {
            assert!((b.t1 / a.t1).abs() < 2.0 && (b.t1 / a.t1).abs() > 0.5);
        }
        // The drifted model still compiles.
        let _ = drifted.noise_model();
    }

    #[test]
    fn drift_is_deterministic_per_seed() {
        let cal = BackendCalibration::lima();
        let a = cal.with_drift(&mut SmallRng::seed_from_u64(7), 0.05);
        let b = cal.with_drift(&mut SmallRng::seed_from_u64(7), 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn restrict_remaps_qubits_and_edges() {
        let cal = BackendCalibration::jakarta();
        // Keep physical {1, 3, 5} -> new {0, 1, 2}; edges (1,3) and (3,5)
        // survive as (0,1) and (1,2).
        let sub = cal.restrict(&[1, 3, 5]);
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.coupling, vec![(0, 1), (1, 2)]);
        assert_eq!(sub.qubits[0], cal.qubits[1]);
        assert_eq!(sub.qubits[2], cal.qubits[5]);
        let _ = sub.noise_model();
    }

    #[test]
    fn restrict_order_defines_remapping() {
        let cal = BackendCalibration::jakarta();
        let sub = cal.restrict(&[5, 3]);
        // new 0 = old 5, new 1 = old 3, edge (3,5) -> (0,1).
        assert_eq!(sub.qubits[0], cal.qubits[5]);
        assert_eq!(sub.coupling, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn restrict_rejects_duplicates() {
        let _ = BackendCalibration::jakarta().restrict(&[1, 1]);
    }

    #[test]
    fn scaled_zero_is_nearly_ideal() {
        let cal = BackendCalibration::bogota().scaled(0.0);
        for q in &cal.qubits {
            assert_eq!(q.gate_error_1q, 0.0);
            assert_eq!(q.readout_p01, 0.0);
            assert!(q.t1 > 1.0); // effectively infinite coherence
        }
    }

    #[test]
    fn scaled_up_increases_errors() {
        let base = BackendCalibration::jakarta();
        let hot = base.scaled(3.0);
        assert!(hot.qubits[0].gate_error_1q > base.qubits[0].gate_error_1q);
        assert!(hot.cx_errors[0] > base.cx_errors[0]);
        assert!(hot.qubits[0].t1 < base.qubits[0].t1);
    }
}
