//! Monte-Carlo quantum-trajectory execution: the statevector path through
//! a noise model.
//!
//! The density-matrix engine ([`crate::simulate`]) is exact but pays
//! `4^n` memory and worse time — 7 qubits is effectively its ceiling.
//! This module trades exactness for width: each *shot* evolves a `2^n`
//! statevector, and every noise channel collapses to **one** sampled
//! Kraus branch (branch `i` with the Born weight `wᵢ = ‖Kᵢ|ψ⟩‖²`,
//! followed by renormalization). Averaging the per-shot probability
//! vectors is an unbiased estimator of the density-path distribution with
//! `O(1/√shots)` total-variation error.
//!
//! Two invariants carry over from the deterministic engine:
//!
//! - **Fixed RNG consumption**: exactly one uniform draw per multi-branch
//!   channel application, regardless of which branch wins; single-operator
//!   channels (including pure-unitary ones) consume **no** randomness.
//!   A shot's outcome is therefore a pure function of its seed.
//! - **Schedule-invariant accumulation**: shots accumulate into
//!   fixed-size blocks ([`SHOT_BLOCK`]) that are folded in block order by
//!   [`ShotAccumulator::mean`], so serial, chunked, and shot-parallel
//!   execution produce bit-identical averages.
//!
//! Readout confusion acts on the *averaged* distribution (it is linear in
//! the state, so this matches applying it per shot) and marginalization
//! follows, mirroring [`crate::simulate::NoisyCursor::finish_dist`].

use crate::model::NoiseModel;
use crate::readout::apply_readout_errors;
use qufi_math::{CMatrix, Complex};
use qufi_sim::circuit::Op;
use qufi_sim::{Gate, ProbDist, QuantumCircuit, SimError, Statevector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shots per accumulation block. Serial and parallel execution both sum
/// shot probabilities into per-block partials and fold the blocks in
/// order, so any worker split that hands out whole blocks reproduces the
/// serial result bit-for-bit.
pub const SHOT_BLOCK: u64 = 64;

/// One noise channel resolved for trajectory sampling: the raw Kraus
/// operators (not the superoperator — trajectories act on vectors).
struct TrajChannel {
    ops: Vec<CMatrix>,
    targets: Vec<usize>,
}

/// One compiled gate instruction: its unitary and the Kraus channels that
/// follow it, resolved against a concrete [`NoiseModel`].
struct TrajStep {
    matrix: CMatrix,
    qubits: Vec<usize>,
    channels: Vec<TrajChannel>,
}

/// A circuit compiled against a noise model for trajectory execution —
/// the statevector counterpart of [`crate::NoisePlan`]. Gate matrices and
/// per-channel Kraus operator lists are resolved **once**, so a shot loop
/// walking the same circuit thousands of times pays no per-gate matrix
/// construction, channel lookup, or allocation.
pub struct TrajPlan {
    size: usize,
    num_qubits: usize,
    /// One entry per instruction; `None` for barriers and measurements.
    steps: Vec<Option<TrajStep>>,
    /// Per-qubit channels suffered by a spliced 1-qubit injector gate
    /// (`U(θ,φ,λ)` — a calibrated physical gate, never the virtual `rz`).
    injector_channels: Vec<Vec<TrajChannel>>,
}

impl TrajPlan {
    /// Compiles `qc` against `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model covers fewer qubits than the circuit uses.
    pub fn compile(qc: &QuantumCircuit, model: &NoiseModel) -> Self {
        let _compile_span = qufi_obs::span("noise.traj.compile_ns");
        qufi_obs::add("noise.traj_plans_compiled", 1);
        assert!(
            model.num_qubits() >= qc.num_qubits(),
            "noise model covers {} qubits, circuit needs {}",
            model.num_qubits(),
            qc.num_qubits()
        );
        let resolve = |gate: Gate, qubits: &[usize]| {
            model
                .channels_after(gate, qubits)
                .into_iter()
                .map(|(ch, targets)| TrajChannel {
                    ops: ch.kraus_operators().to_vec(),
                    targets,
                })
                .collect::<Vec<_>>()
        };
        let steps = qc
            .ops()
            .iter()
            .map(|op| match op {
                Op::Gate { gate, qubits } => Some(TrajStep {
                    matrix: gate.matrix(),
                    qubits: qubits.clone(),
                    channels: resolve(*gate, qubits),
                }),
                _ => None,
            })
            .collect();
        let injector_channels = (0..qc.num_qubits())
            .map(|q| resolve(Gate::U(0.0, 0.0, 0.0), &[q]))
            .collect();
        TrajPlan {
            size: qc.size(),
            num_qubits: qc.num_qubits(),
            steps,
            injector_channels,
        }
    }

    /// Number of instructions in the compiled circuit.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Width of the compiled circuit.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }
}

/// Reusable scratch for branch-weight evaluation: candidate branches are
/// applied to a copy of the state so the winner can be committed by a
/// buffer swap instead of a recompute. One workspace per worker thread;
/// after warmup the shot loop allocates nothing.
#[derive(Default)]
pub struct TrajWorkspace {
    scratch: Option<Statevector>,
}

impl TrajWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        TrajWorkspace::default()
    }
}

/// A paused trajectory evolution: the statevector of **one shot** after
/// the first [`position`](TrajectoryCursor::position) instructions, with
/// every noise channel so far collapsed to a sampled Kraus branch.
///
/// The RNG is threaded through the advance calls rather than owned, so a
/// caller can park a prefix state and later resume the suffix under an
/// independently-seeded stream — the seed-derivation trick that keeps
/// grid replay schedule-invariant.
pub struct TrajectoryCursor {
    sv: Statevector,
    pos: usize,
}

impl TrajectoryCursor {
    /// A cursor at instruction 0 of the plan's circuit in `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error when the register exceeds the statevector
    /// engine's width limit.
    pub fn start(plan: &TrajPlan) -> Result<Self, SimError> {
        Ok(TrajectoryCursor {
            sv: Statevector::new(plan.num_qubits())?,
            pos: 0,
        })
    }

    /// Resumes from a previously-parked statevector at instruction `pos`
    /// — the inverse of [`TrajectoryCursor::into_state`].
    pub fn resume(sv: Statevector, pos: usize) -> Self {
        TrajectoryCursor { sv, pos }
    }

    /// Number of instructions already applied.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The current statevector.
    #[inline]
    pub fn state(&self) -> &Statevector {
        &self.sv
    }

    /// Consumes the cursor, yielding the statevector.
    pub fn into_state(self) -> Statevector {
        self.sv
    }

    /// Samples one Kraus branch of `ch` and applies it.
    ///
    /// Single-operator channels are applied directly — a one-operator
    /// CPTP channel is unitary, so no weight evaluation or RNG draw is
    /// needed (and skipping the draw keeps the per-shot stream fixed).
    /// Multi-branch channels consume exactly one uniform draw: branches
    /// are evaluated in the model's canonical order into the workspace
    /// scratch, and the first whose cumulative weight exceeds the draw
    /// wins. If floating-point shortfall leaves the cumulative weight
    /// below the draw after the last branch (`Σwᵢ = 1` only up to
    /// rounding), the last evaluated branch is committed.
    fn apply_channel<R: Rng>(&mut self, ch: &TrajChannel, rng: &mut R, ws: &mut TrajWorkspace) {
        if let [only] = ch.ops.as_slice() {
            self.sv.apply_matrix(only, &ch.targets);
            return;
        }
        qufi_obs::add("traj.branch_draws", 1);
        let u: f64 = rng.gen();
        let scratch = ws
            .scratch
            .get_or_insert_with(|| Statevector::from_amplitudes(vec![Complex::ONE]));
        let mut cumulative = 0.0f64;
        let mut weight = 1.0f64;
        for op in &ch.ops {
            qufi_obs::add("traj.branch_evals", 1);
            scratch.copy_from(&self.sv);
            scratch.apply_matrix(op, &ch.targets);
            weight = scratch
                .amplitudes()
                .iter()
                .map(|a| a.norm_sqr())
                .sum::<f64>();
            cumulative += weight;
            if u < cumulative {
                std::mem::swap(&mut self.sv, scratch);
                self.sv.scale(1.0 / weight.sqrt());
                return;
            }
        }
        // Σwᵢ fell short of the draw by rounding: commit the last branch,
        // which is still parked in scratch.
        qufi_obs::add("traj.branch_fallback", 1);
        std::mem::swap(&mut self.sv, scratch);
        self.sv.scale(1.0 / weight.sqrt());
    }

    /// Applies instructions `[position, upto)` through the plan: each
    /// gate's unitary, then one sampled branch per channel.
    ///
    /// # Panics
    ///
    /// Panics when `upto` is behind the cursor or beyond the plan.
    pub fn advance_planned<R: Rng>(
        &mut self,
        plan: &TrajPlan,
        upto: usize,
        rng: &mut R,
        ws: &mut TrajWorkspace,
    ) {
        assert!(
            upto >= self.pos,
            "cursor at {} cannot rewind to {upto}",
            self.pos
        );
        assert!(
            upto <= plan.size(),
            "advance_planned({upto}) beyond plan of {} instructions",
            plan.size()
        );
        for step in plan.steps[self.pos..upto].iter().flatten() {
            self.sv.apply_matrix(&step.matrix, &step.qubits);
            for ch in &step.channels {
                self.apply_channel(ch, rng, ws);
            }
        }
        self.pos = upto;
    }

    /// The trajectory counterpart of
    /// [`crate::NoisyCursor::apply_planned_injector`]: applies a spliced
    /// 1-qubit injector gate's unitary, then one sampled branch per
    /// channel the plan cached for a calibrated 1-qubit gate on `qubit`,
    /// without moving the instruction position.
    ///
    /// # Panics
    ///
    /// Panics for multi-qubit gates and for the virtual `rz` (which
    /// carries no noise and must not be spliced through this path).
    pub fn apply_planned_injector<R: Rng>(
        &mut self,
        plan: &TrajPlan,
        gate: Gate,
        qubit: usize,
        rng: &mut R,
        ws: &mut TrajWorkspace,
    ) {
        assert_eq!(gate.num_qubits(), 1, "injector must be a 1-qubit gate");
        assert!(
            !matches!(gate, Gate::Rz(_)),
            "virtual rz gates carry no noise and cannot use the injector path"
        );
        self.sv.apply_matrix(&gate.matrix(), &[qubit]);
        for ch in &plan.injector_channels[qubit] {
            self.apply_channel(ch, rng, ws);
        }
    }
}

/// Accumulates per-shot probability vectors into [`SHOT_BLOCK`]-sized
/// partial sums so the fold order is fixed by shot *index*, never by
/// execution schedule. A full accumulator covers every block; workers in
/// a shot-parallel split each build a range accumulator over whole blocks
/// and the ranges are [absorbed](ShotAccumulator::absorb) back — the
/// resulting [`mean`](ShotAccumulator::mean) is bit-identical to serial.
pub struct ShotAccumulator {
    dim: usize,
    shots: u64,
    first_block: usize,
    blocks: Vec<Vec<f64>>,
}

impl ShotAccumulator {
    /// An accumulator covering all `shots` shots of an `num_qubits`-wide
    /// register.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn new(num_qubits: usize, shots: u64) -> Self {
        assert!(shots > 0, "trajectory execution needs at least one shot");
        ShotAccumulator::for_shot_range(num_qubits, shots, 0, shots)
    }

    /// An accumulator covering only shots `[start, end)`, for one worker
    /// of a shot-parallel split. The range must cover whole blocks:
    /// `start` on a block boundary, `end` on a boundary or at `shots`.
    ///
    /// # Panics
    ///
    /// Panics on an empty, misaligned, or out-of-range split.
    pub fn for_shot_range(num_qubits: usize, shots: u64, start: u64, end: u64) -> Self {
        assert!(shots > 0, "trajectory execution needs at least one shot");
        assert!(start < end && end <= shots, "bad shot range {start}..{end}");
        assert_eq!(start % SHOT_BLOCK, 0, "range must start on a block");
        assert!(
            end.is_multiple_of(SHOT_BLOCK) || end == shots,
            "range must end on a block boundary or at the last shot"
        );
        let dim = 1usize << num_qubits;
        let n_blocks = (end - start).div_ceil(SHOT_BLOCK) as usize;
        ShotAccumulator {
            dim,
            shots,
            first_block: (start / SHOT_BLOCK) as usize,
            blocks: vec![vec![0.0; dim]; n_blocks],
        }
    }

    /// Adds shot `shot`'s Born-rule probabilities. Shots **must** be
    /// added in increasing index order within each block — that is the
    /// order every schedule replays, so the per-block FP sums match.
    ///
    /// # Panics
    ///
    /// Panics when the shot lies outside this accumulator's range or the
    /// state width disagrees.
    pub fn add_shot(&mut self, shot: u64, sv: &Statevector) {
        assert_eq!(sv.amplitudes().len(), self.dim, "state width mismatch");
        let block = (shot / SHOT_BLOCK) as usize - self.first_block;
        let partial = &mut self.blocks[block];
        for (acc, a) in partial.iter_mut().zip(sv.amplitudes()) {
            *acc += a.norm_sqr();
        }
    }

    /// Copies a worker's finished block range into this (full)
    /// accumulator. Ranges from a disjoint split land in disjoint blocks,
    /// so absorption is a plain per-block copy — no FP reassociation.
    ///
    /// # Panics
    ///
    /// Panics on shot-count or width mismatch.
    pub fn absorb(&mut self, part: &ShotAccumulator) {
        assert_eq!(part.shots, self.shots, "shot count mismatch");
        assert_eq!(part.dim, self.dim, "width mismatch");
        for (i, block) in part.blocks.iter().enumerate() {
            self.blocks[part.first_block + i].clone_from(block);
        }
    }

    /// The mean probability vector: block partials folded strictly in
    /// block order, divided by the shot count last.
    pub fn mean(&self) -> Vec<f64> {
        assert_eq!(self.first_block, 0, "mean of a partial accumulator");
        let mut acc = vec![0.0f64; self.dim];
        for block in &self.blocks {
            for (a, &p) in acc.iter_mut().zip(block) {
                *a += p;
            }
        }
        let inv = 1.0 / self.shots as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }
}

/// Completes a trajectory run: readout confusion on the averaged qubit
/// distribution, then marginalization through `qc`'s measurement map —
/// the statistical mirror of [`crate::NoisyCursor::finish_dist`].
/// (Readout confusion is linear, so confusing the average equals
/// averaging confused shots.)
pub fn finish_trajectory_dist(
    mean_probs: Vec<f64>,
    num_qubits: usize,
    model: &NoiseModel,
    qc: &QuantumCircuit,
) -> ProbDist {
    let mut dist = ProbDist::from_probs(mean_probs, num_qubits);
    dist = apply_readout_errors(&dist, model.readout_errors());
    let map = qc.measurement_map();
    if map.is_empty() {
        dist
    } else {
        dist.marginalize(&map, qc.num_clbits())
    }
}

/// Full trajectory execution of `qc` under `model`: `shots` independent
/// trajectories, each seeded by `seed_for_shot(shot)`, averaged and
/// finished through readout confusion and marginalization.
///
/// The result is a pure function of the circuit, model, shot count, and
/// seed sequence — independent of scheduling, which is why callers derive
/// per-shot seeds from a [`SeedHasher`]-style mix rather than sharing a
/// sequential RNG.
///
/// # Errors
///
/// Returns an error when the register exceeds the statevector engine's
/// width limit.
///
/// # Panics
///
/// Panics if the model covers fewer qubits than the circuit uses or
/// `shots` is zero.
pub fn run_trajectories(
    qc: &QuantumCircuit,
    model: &NoiseModel,
    shots: u64,
    mut seed_for_shot: impl FnMut(u64) -> u64,
) -> Result<ProbDist, SimError> {
    let plan = TrajPlan::compile(qc, model);
    // Surface the width error before any shot work.
    TrajectoryCursor::start(&plan)?;
    qufi_obs::add("traj.shots", shots);
    let mut acc = ShotAccumulator::new(qc.num_qubits(), shots);
    let mut ws = TrajWorkspace::new();
    for shot in 0..shots {
        let mut rng = SmallRng::seed_from_u64(seed_for_shot(shot));
        let mut cursor = TrajectoryCursor::start(&plan)?;
        cursor.advance_planned(&plan, plan.size(), &mut rng, &mut ws);
        acc.add_shot(shot, cursor.state());
    }
    Ok(finish_trajectory_dist(
        acc.mean(),
        qc.num_qubits(),
        model,
        qc,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendCalibration;
    use crate::simulate::run_noisy;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    fn shot_seed(base: u64) -> impl FnMut(u64) -> u64 {
        move |shot| base.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(shot)
    }

    #[test]
    fn ideal_model_reproduces_statevector_per_shot() {
        let qc = bell();
        let d = run_trajectories(&qc, &NoiseModel::ideal(2), 8, shot_seed(1)).unwrap();
        let pure = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        // No channels → every shot is the exact pure state; 8 shots suffice.
        assert!(d.tv_distance(&pure) < 1e-12);
    }

    #[test]
    fn fixed_seeds_are_bit_identical() {
        let qc = bell();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1])
            .noise_model();
        let a = run_trajectories(&qc, &model, 64, shot_seed(7)).unwrap();
        let b = run_trajectories(&qc, &model, 64, shot_seed(7)).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.prob(i).to_bits(), b.prob(i).to_bits(), "outcome {i}");
        }
    }

    #[test]
    fn mean_converges_to_density_path() {
        let qc = bell();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1])
            .noise_model();
        let oracle = run_noisy(&qc, &model).unwrap();
        let coarse = run_trajectories(&qc, &model, 256, shot_seed(3)).unwrap();
        let fine = run_trajectories(&qc, &model, 4096, shot_seed(3)).unwrap();
        assert!(coarse.tv_distance(&oracle) < 0.08);
        assert!(fine.tv_distance(&oracle) < 0.02);
    }

    #[test]
    fn chunked_accumulation_matches_serial_bit_for_bit() {
        let qc = bell();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1])
            .noise_model();
        let plan = TrajPlan::compile(&qc, &model);
        let shots = 3 * SHOT_BLOCK + 17;
        let run_range = |start: u64, end: u64| {
            let mut part = ShotAccumulator::for_shot_range(2, shots, start, end);
            let mut ws = TrajWorkspace::new();
            for shot in start..end {
                let mut rng = SmallRng::seed_from_u64(shot_seed(11)(shot));
                let mut cursor = TrajectoryCursor::start(&plan).unwrap();
                cursor.advance_planned(&plan, plan.size(), &mut rng, &mut ws);
                part.add_shot(shot, cursor.state());
            }
            part
        };
        let serial = run_range(0, shots).mean();
        let mut merged = ShotAccumulator::new(2, shots);
        merged.absorb(&run_range(0, SHOT_BLOCK));
        merged.absorb(&run_range(SHOT_BLOCK, 3 * SHOT_BLOCK));
        merged.absorb(&run_range(3 * SHOT_BLOCK, shots));
        let chunked = merged.mean();
        for (i, (a, b)) in serial.iter().zip(&chunked).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "outcome {i}");
        }
    }

    #[test]
    fn readout_error_visible_on_deterministic_circuit() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let model = BackendCalibration::jakarta().restrict(&[0]).noise_model();
        let d = run_trajectories(&qc, &model, 512, shot_seed(5)).unwrap();
        // p10 of qubit 0 is 3.8%; gate error adds a bit more.
        assert!(d.prob_of("0") > 0.02);
        assert!(d.prob_of("0") < 0.10);
    }

    #[test]
    fn injector_matches_inserted_gate_under_ideal_noise() {
        // With an ideal model the trajectory is deterministic, so the
        // spliced-injector path must agree exactly with insertion.
        let qc = bell();
        let model = NoiseModel::ideal(2);
        let plan = TrajPlan::compile(&qc, &model);
        let mut spliced = qc.clone();
        spliced.insert(1, Gate::U(0.7, 0.4, 0.0), &[0]);
        let straight = Statevector::from_circuit(&spliced)
            .unwrap()
            .measurement_distribution(&spliced);

        let mut rng = SmallRng::seed_from_u64(0);
        let mut ws = TrajWorkspace::new();
        let mut cursor = TrajectoryCursor::start(&plan).unwrap();
        cursor.advance_planned(&plan, 1, &mut rng, &mut ws);
        cursor.apply_planned_injector(&plan, Gate::U(0.7, 0.4, 0.0), 0, &mut rng, &mut ws);
        cursor.advance_planned(&plan, plan.size(), &mut rng, &mut ws);
        let mut acc = ShotAccumulator::new(2, 1);
        acc.add_shot(0, cursor.state());
        let d = finish_trajectory_dist(acc.mean(), 2, &model, &qc);
        for i in 0..d.len() {
            assert!((d.prob(i) - straight.prob(i)).abs() < 1e-12, "outcome {i}");
        }
    }

    #[test]
    #[should_panic(expected = "virtual rz")]
    fn injector_rejects_rz() {
        let qc = bell();
        let model = NoiseModel::ideal(2);
        let plan = TrajPlan::compile(&qc, &model);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ws = TrajWorkspace::new();
        let mut cursor = TrajectoryCursor::start(&plan).unwrap();
        cursor.apply_planned_injector(&plan, Gate::Rz(0.3), 0, &mut rng, &mut ws);
    }

    #[test]
    fn parked_prefix_resume_is_bit_identical_to_straight_shot() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).sx(2).cx(1, 2).x(0);
        qc.measure_all();
        let model = BackendCalibration::jakarta()
            .restrict(&[0, 1, 2])
            .noise_model();
        let plan = TrajPlan::compile(&qc, &model);
        let mut ws = TrajWorkspace::new();
        for split in 0..=plan.size() {
            // The prefix stream and the suffix stream are seeded
            // independently — exactly how the sweep engine replays.
            let straight = {
                let mut rng = SmallRng::seed_from_u64(41);
                let mut cursor = TrajectoryCursor::start(&plan).unwrap();
                cursor.advance_planned(&plan, split, &mut rng, &mut ws);
                let mut rng = SmallRng::seed_from_u64(42);
                cursor.advance_planned(&plan, plan.size(), &mut rng, &mut ws);
                cursor.into_state()
            };
            let resumed = {
                let mut rng = SmallRng::seed_from_u64(41);
                let mut cursor = TrajectoryCursor::start(&plan).unwrap();
                cursor.advance_planned(&plan, split, &mut rng, &mut ws);
                let parked = cursor.state().snapshot();
                assert_eq!(cursor.position(), split);
                let mut rng = SmallRng::seed_from_u64(42);
                let mut resumed = TrajectoryCursor::resume(parked, split);
                resumed.advance_planned(&plan, plan.size(), &mut rng, &mut ws);
                resumed.into_state()
            };
            for (i, (a, b)) in straight
                .amplitudes()
                .iter()
                .zip(resumed.amplitudes())
                .enumerate()
            {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "split {split}: amplitude {i} differs"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_panics() {
        let _ = ShotAccumulator::new(2, 0);
    }
}
