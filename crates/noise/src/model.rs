//! Noise models: which channels follow which gate.
//!
//! Mirrors the structure of Qiskit Aer's `NoiseModel.from_backend`:
//!
//! * every 1-qubit gate except the virtual `rz` is followed by a
//!   depolarizing error (the calibrated gate error) composed with thermal
//!   relaxation for the gate duration;
//! * every 2-qubit gate is followed by a 2-qubit depolarizing error and
//!   relaxation on both operands;
//! * measurement applies a per-qubit readout confusion matrix.
//!
//! Channels are precomputed at construction so a fault-injection campaign of
//! hundreds of thousands of circuit executions pays no per-gate setup cost.

use crate::channel::KrausChannel;
use crate::readout::ReadoutError;
use qufi_sim::Gate;
use std::collections::HashMap;

/// Per-qubit noise parameters used to build a [`NoiseModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QubitNoiseSpec {
    /// Spin-lattice relaxation time T1, in seconds.
    pub t1: f64,
    /// Spin-spin relaxation time T2, in seconds (≤ 2·T1).
    pub t2: f64,
    /// Depolarizing probability after each calibrated 1-qubit gate.
    pub gate_error_1q: f64,
    /// Readout confusion probabilities.
    pub readout: ReadoutError,
}

/// A compiled noise model: gate → channels.
///
/// # Example
///
/// ```
/// use qufi_noise::{NoiseModel, ReadoutError};
/// use qufi_sim::Gate;
///
/// let model = NoiseModel::ideal(3);
/// assert!(model.channels_after(Gate::H, &[0]).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    n: usize,
    /// Combined depolarizing + relaxation channel after a 1-qubit gate.
    one_q: Vec<Option<KrausChannel>>,
    /// Combined 2-qubit channel keyed by the unordered operand pair, plus
    /// per-operand relaxation channels.
    two_q: HashMap<(usize, usize), KrausChannel>,
    /// Relaxation experienced by each operand during a 2-qubit gate.
    two_q_relax: Vec<Option<KrausChannel>>,
    readout: Vec<Option<ReadoutError>>,
}

impl NoiseModel {
    /// A noise-free model over `n` qubits (the paper's scenario 1).
    pub fn ideal(n: usize) -> Self {
        NoiseModel {
            n,
            one_q: vec![None; n],
            two_q: HashMap::new(),
            two_q_relax: vec![None; n],
            readout: vec![None; n],
        }
    }

    /// Builds a model from per-qubit specs and per-edge CX error rates.
    ///
    /// `time_1q` / `time_2q` are gate durations in seconds.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit outside `specs`, or any spec
    /// violates channel constraints (see [`KrausChannel::thermal_relaxation`]).
    pub fn from_specs(
        specs: &[QubitNoiseSpec],
        cx_errors: &[((usize, usize), f64)],
        time_1q: f64,
        time_2q: f64,
    ) -> Self {
        let n = specs.len();
        let mut one_q = Vec::with_capacity(n);
        let mut two_q_relax = Vec::with_capacity(n);
        let mut readout = Vec::with_capacity(n);
        for s in specs {
            let relax_1q = KrausChannel::thermal_relaxation(s.t1, s.t2, time_1q);
            let depol = KrausChannel::depolarizing(s.gate_error_1q, 1);
            let combined = depol.compose(&relax_1q);
            one_q.push((!combined.is_identity(1e-12)).then_some(combined));
            let relax_2q = KrausChannel::thermal_relaxation(s.t1, s.t2, time_2q);
            two_q_relax.push((!relax_2q.is_identity(1e-12)).then_some(relax_2q));
            readout.push((!s.readout.is_ideal()).then_some(s.readout));
        }
        let mut two_q = HashMap::new();
        for &((a, b), err) in cx_errors {
            assert!(a < n && b < n, "cx edge ({a},{b}) out of range");
            let key = (a.min(b), a.max(b));
            two_q.insert(key, KrausChannel::depolarizing(err, 2));
        }
        NoiseModel {
            n,
            one_q,
            two_q,
            two_q_relax,
            readout,
        }
    }

    /// Number of qubits the model covers.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// `true` when no gate or readout produces any error.
    pub fn is_ideal(&self) -> bool {
        self.one_q.iter().all(Option::is_none)
            && self.two_q.is_empty()
            && self.readout.iter().all(Option::is_none)
    }

    /// The channels (with their target qubits) to apply **after** a gate.
    ///
    /// `rz` is virtual on IBM hardware (implemented as a frame change) and
    /// carries no error; barriers and identity-free qubits yield nothing.
    pub fn channels_after(&self, gate: Gate, qubits: &[usize]) -> Vec<(&KrausChannel, Vec<usize>)> {
        let mut out = Vec::new();
        if matches!(gate, Gate::Rz(_)) {
            return out;
        }
        match qubits.len() {
            1 => {
                let q = qubits[0];
                if let Some(ch) = self.one_q.get(q).and_then(Option::as_ref) {
                    out.push((ch, vec![q]));
                }
            }
            2 => {
                let key = (qubits[0].min(qubits[1]), qubits[0].max(qubits[1]));
                if let Some(ch) = self.two_q.get(&key) {
                    out.push((ch, qubits.to_vec()));
                }
                for &q in qubits {
                    if let Some(ch) = self.two_q_relax.get(q).and_then(Option::as_ref) {
                        out.push((ch, vec![q]));
                    }
                }
            }
            _ => {
                // 3+ qubit gates (Toffoli) are decomposed by the transpiler
                // before hitting noisy hardware; when simulated directly we
                // apply per-qubit relaxation as an approximation.
                for &q in qubits {
                    if let Some(ch) = self.one_q.get(q).and_then(Option::as_ref) {
                        out.push((ch, vec![q]));
                    }
                }
            }
        }
        out
    }

    /// Per-qubit readout errors (`None` = ideal), indexed by qubit.
    pub fn readout_errors(&self) -> &[Option<ReadoutError>] {
        &self.readout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QubitNoiseSpec {
        QubitNoiseSpec {
            t1: 120e-6,
            t2: 80e-6,
            gate_error_1q: 3e-4,
            readout: ReadoutError::new(0.02, 0.03),
        }
    }

    #[test]
    fn ideal_model_has_no_channels() {
        let m = NoiseModel::ideal(4);
        assert!(m.is_ideal());
        assert!(m.channels_after(Gate::H, &[2]).is_empty());
        assert!(m.channels_after(Gate::Cx, &[0, 1]).is_empty());
    }

    #[test]
    fn one_qubit_gate_gets_combined_channel() {
        let m = NoiseModel::from_specs(&[spec(), spec()], &[((0, 1), 8e-3)], 35e-9, 450e-9);
        let chans = m.channels_after(Gate::Sx, &[0]);
        assert_eq!(chans.len(), 1);
        assert_eq!(chans[0].1, vec![0]);
        assert!(chans[0].0.is_cptp(1e-9));
    }

    #[test]
    fn rz_is_noiseless() {
        let m = NoiseModel::from_specs(&[spec()], &[], 35e-9, 450e-9);
        assert!(m.channels_after(Gate::Rz(1.0), &[0]).is_empty());
        assert!(!m.channels_after(Gate::X, &[0]).is_empty());
    }

    #[test]
    fn two_qubit_gate_gets_depol_plus_relaxation() {
        let m = NoiseModel::from_specs(&[spec(), spec()], &[((0, 1), 8e-3)], 35e-9, 450e-9);
        let chans = m.channels_after(Gate::Cx, &[1, 0]);
        // 2q depolarizing + relaxation on each operand.
        assert_eq!(chans.len(), 3);
        assert_eq!(chans[0].1, vec![1, 0]);
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let m = NoiseModel::from_specs(&[spec(), spec()], &[((1, 0), 8e-3)], 35e-9, 450e-9);
        assert_eq!(m.channels_after(Gate::Cx, &[0, 1]).len(), 3);
        assert_eq!(m.channels_after(Gate::Cx, &[1, 0]).len(), 3);
    }

    #[test]
    fn uncoupled_pair_gets_relaxation_only() {
        let specs = [spec(), spec(), spec()];
        let m = NoiseModel::from_specs(&specs, &[((0, 1), 8e-3)], 35e-9, 450e-9);
        let chans = m.channels_after(Gate::Cx, &[0, 2]);
        assert_eq!(chans.len(), 2); // relaxation on 0 and 2, no 2q depol
    }

    #[test]
    fn readout_errors_exposed() {
        let m = NoiseModel::from_specs(&[spec()], &[], 35e-9, 450e-9);
        assert!(m.readout_errors()[0].is_some());
        assert!(!m.is_ideal());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = NoiseModel::from_specs(&[spec()], &[((0, 3), 1e-2)], 35e-9, 450e-9);
    }
}
