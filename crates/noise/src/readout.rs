//! Measurement (readout) errors.
//!
//! IBM devices misreport qubit states with probabilities published in their
//! calibration data (typically 1–4% on Falcon processors). We model readout
//! error as a per-qubit 2×2 confusion matrix applied to the output
//! distribution — exactly what Qiskit Aer's `ReadoutError` does.

use qufi_sim::ProbDist;

/// A per-qubit readout confusion matrix.
///
/// `p01` is the probability of reading `1` when the qubit is `0`;
/// `p10` of reading `0` when the qubit is `1`.
///
/// # Example
///
/// ```
/// use qufi_noise::ReadoutError;
/// use qufi_sim::ProbDist;
///
/// let ro = ReadoutError::new(0.02, 0.05);
/// let d = ProbDist::delta(1, 1); // qubit surely |1>
/// let noisy = ro.apply_to_qubit(&d, 0);
/// assert!((noisy.prob(0) - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReadoutError {
    p01: f64,
    p10: f64,
}

impl ReadoutError {
    /// Creates a readout error from the two flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 out of range");
        assert!((0.0..=1.0).contains(&p10), "p10 out of range");
        ReadoutError { p01, p10 }
    }

    /// The ideal (error-free) readout.
    pub fn ideal() -> Self {
        ReadoutError { p01: 0.0, p10: 0.0 }
    }

    /// Probability of reading `1` given state `0`.
    #[inline]
    pub fn p01(&self) -> f64 {
        self.p01
    }

    /// Probability of reading `0` given state `1`.
    #[inline]
    pub fn p10(&self) -> f64 {
        self.p10
    }

    /// `true` when both flip probabilities are zero.
    pub fn is_ideal(&self) -> bool {
        self.p01 == 0.0 && self.p10 == 0.0
    }

    /// Applies the confusion matrix to bit `bit` of a distribution.
    pub fn apply_to_qubit(&self, dist: &ProbDist, bit: usize) -> ProbDist {
        assert!(bit < dist.num_bits(), "bit out of range");
        let mut probs: Vec<f64> = dist.probs().to_vec();
        let mask = 1usize << bit;
        for idx in 0..probs.len() {
            if idx & mask != 0 {
                continue; // handle each (0,1) pair once, from the 0 side
            }
            let p0 = probs[idx];
            let p1 = probs[idx | mask];
            probs[idx] = p0 * (1.0 - self.p01) + p1 * self.p10;
            probs[idx | mask] = p0 * self.p01 + p1 * (1.0 - self.p10);
        }
        ProbDist::from_probs(probs, dist.num_bits())
    }
}

/// Applies per-qubit readout errors to a distribution over qubit outcomes.
/// Entry `i` of `errors` applies to bit `i`; `None` means ideal readout.
pub fn apply_readout_errors(dist: &ProbDist, errors: &[Option<ReadoutError>]) -> ProbDist {
    let mut out = dist.clone();
    for (bit, err) in errors.iter().enumerate() {
        if bit >= dist.num_bits() {
            break;
        }
        if let Some(e) = err {
            if !e.is_ideal() {
                out = e.apply_to_qubit(&out, bit);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_mixes_both_directions() {
        let ro = ReadoutError::new(0.1, 0.2);
        let d = ProbDist::from_probs(vec![0.5, 0.5], 1);
        let out = ro.apply_to_qubit(&d, 0);
        // P(read 0) = 0.5*0.9 + 0.5*0.2 = 0.55
        assert!((out.prob(0) - 0.55).abs() < 1e-12);
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn applies_to_selected_bit_only() {
        let ro = ReadoutError::new(1.0, 0.0); // always read 1 when 0
        let d = ProbDist::delta(0b00, 2);
        let out = ro.apply_to_qubit(&d, 1);
        assert!((out.prob(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_qubit_list_application() {
        let errs = vec![
            Some(ReadoutError::new(0.5, 0.5)),
            None,
            Some(ReadoutError::ideal()),
        ];
        let d = ProbDist::delta(0b000, 3);
        let out = apply_readout_errors(&d, &errs);
        // Only bit 0 is scrambled.
        assert!((out.prob(0b000) - 0.5).abs() < 1e-12);
        assert!((out.prob(0b001) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_probability_preserved() {
        let ro = ReadoutError::new(0.03, 0.07);
        let d = ProbDist::from_probs(vec![0.1, 0.2, 0.3, 0.4], 2);
        let out = ro.apply_to_qubit(&ro.apply_to_qubit(&d, 0), 1);
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p01 out of range")]
    fn invalid_probability_rejected() {
        let _ = ReadoutError::new(1.5, 0.0);
    }
}
