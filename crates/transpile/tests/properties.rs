//! Property-based tests of the transpilation pipeline: for random circuits
//! and random devices, routing and optimization must preserve the implemented
//! unitary (up to global phase) / the measured distribution, and structural
//! invariants (coupled 2q pairs, native basis) must hold.

use proptest::prelude::*;
use qufi_sim::circuit::Op;
use qufi_sim::{unitary, Gate, QuantumCircuit, Statevector};
use qufi_transpile::basis::is_native;
use qufi_transpile::optimize::{optimize, Level};
use qufi_transpile::routing::{route_with, RoutingStrategy};
use qufi_transpile::{CouplingMap, Layout, OptimizationLevel, Transpiler};

fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let angle = -3.0f64..3.0;
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        q.clone().prop_map(|a| (Gate::Tdg, vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Ry(t), vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Rz(t), vec![a])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Gate::Swap, vec![a, b])),
        (angle, q.clone(), q)
            .prop_filter("distinct", |(_, a, b)| a != b)
            .prop_map(|(l, a, b)| (Gate::Cp(l), vec![a, b])),
    ]
}

fn arb_unitary_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut qc = QuantumCircuit::new(n, 0);
        for (g, qs) in gates {
            qc.append(g, &qs);
        }
        qc
    })
}

fn arb_device() -> impl Strategy<Value = CouplingMap> {
    prop_oneof![
        Just(CouplingMap::line(4)),
        Just(CouplingMap::ring(4)),
        Just(CouplingMap::ibm_t5()),
        Just(CouplingMap::ibm_h7()),
        Just(CouplingMap::grid(2, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both routing strategies preserve the circuit unitary up to phase.
    #[test]
    fn routing_preserves_unitary(
        qc in arb_unitary_circuit(4, 12),
        device in arb_device(),
        lookahead in any::<bool>(),
    ) {
        let strategy = if lookahead {
            RoutingStrategy::Lookahead { window: 4 }
        } else {
            RoutingStrategy::ShortestPath
        };
        let layout = Layout::trivial(4, device.num_qubits());
        let routed = route_with(&qc, &device, layout, strategy).expect("routes");
        // Compare distributions from a superposed probe state: run both
        // circuits after H on every logical wire (physical wires for the
        // routed one, through the final layout).
        let probe_logical = Statevector::from_circuit(&qc).expect("fits");
        let probe_routed = Statevector::from_circuit(&routed.circuit).expect("fits");
        // Undo the permutation: logical qubit l sits on physical
        // final_layout.physical(l); marginalize the routed distribution
        // through that map.
        let map: Vec<(usize, usize)> = (0..4)
            .map(|l| (routed.final_layout.physical(l), l))
            .collect();
        let routed_dist = probe_routed.probabilities().marginalize(&map, 4);
        prop_assert!(probe_logical.probabilities().tv_distance(&routed_dist) < 1e-8);
        // Structural invariant: every 2q gate is coupled.
        for op in routed.circuit.instructions() {
            if let Op::Gate { qubits, .. } = op {
                if qubits.len() == 2 {
                    prop_assert!(device.are_coupled(qubits[0], qubits[1]));
                }
            }
        }
    }

    /// The optimizer preserves the unitary up to global phase at every level.
    #[test]
    fn optimizer_preserves_unitary(qc in arb_unitary_circuit(3, 14)) {
        let reference = unitary::circuit_unitary(&qc).expect("fits");
        for level in [Level::Level1, Level::Level2, Level::Level3] {
            let opt = optimize(&qc, level, false);
            let u = unitary::circuit_unitary(&opt).expect("fits");
            prop_assert!(
                u.approx_eq_up_to_phase(&reference, 1e-8),
                "level {level:?} changed the unitary"
            );
            prop_assert!(opt.gate_count() <= qc.gate_count());
        }
    }

    /// The full pipeline emits only native gates and preserves measured
    /// semantics.
    #[test]
    fn full_pipeline_native_and_correct(qc0 in arb_unitary_circuit(4, 10)) {
        let mut qc = qc0;
        // measure_all needs clbits; rebuild with them.
        let mut measured = QuantumCircuit::new(4, 4);
        for op in qc.instructions() {
            if let Op::Gate { gate, qubits } = op {
                measured.append(*gate, qubits);
            }
        }
        measured.measure_all();
        qc = measured;

        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
        let result = t.run(&qc).expect("transpiles");
        for op in result.circuit().instructions() {
            if let Op::Gate { gate, .. } = op {
                prop_assert!(is_native(*gate), "non-native {gate}");
            }
        }
        let a = Statevector::from_circuit(&qc).expect("fits").measurement_distribution(&qc);
        let b = Statevector::from_circuit(result.circuit())
            .expect("fits")
            .measurement_distribution(result.circuit());
        prop_assert!(a.tv_distance(&b) < 1e-8);
    }
}
