//! Transpilation errors.

use core::fmt;

/// Errors raised while mapping a circuit onto a device.
#[derive(Debug, Clone, PartialEq)]
pub enum TranspileError {
    /// The circuit needs more qubits than the device offers.
    CircuitTooWide {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// The coupling graph is disconnected, so routing cannot reach some
    /// qubit pairs.
    DisconnectedTopology,
    /// A gate survived decomposition that routing cannot handle.
    UnroutableGate(String),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::CircuitTooWide { needed, available } => {
                write!(f, "circuit needs {needed} qubits, device has {available}")
            }
            TranspileError::DisconnectedTopology => {
                write!(f, "coupling map is disconnected")
            }
            TranspileError::UnroutableGate(name) => {
                write!(f, "cannot route gate {name}")
            }
        }
    }
}

impl std::error::Error for TranspileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TranspileError::CircuitTooWide {
            needed: 9,
            available: 7,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('7'));
    }
}
