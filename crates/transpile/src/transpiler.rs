//! The transpilation pipeline and its result object.
//!
//! [`Transpiler::run`] chains decomposition → layout → routing → basis
//! translation → optimization, and [`TranspileResult`] retains the
//! logical↔physical bookkeeping QuFI needs: "QuFI keeps track of the logical
//! and physical qubits throughout the transpiling process, and tags the
//! qubits that are neighbors after the transpiling process" (§IV-C).

use crate::basis::{decompose_ccx, translate_to_basis};
use crate::error::TranspileError;
use crate::layout::Layout;
use crate::optimize::{optimize, Level};
use crate::routing::{route_with, RoutingStrategy};
use crate::topology::CouplingMap;
use qufi_sim::circuit::Op;
use qufi_sim::QuantumCircuit;

/// Re-export of the optimization [`Level`] under the Qiskit-flavoured name.
pub type OptimizationLevel = Level;

/// Configures and runs the transpilation pipeline.
///
/// # Example
///
/// ```
/// use qufi_sim::QuantumCircuit;
/// use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};
///
/// let mut qc = QuantumCircuit::new(4, 4);
/// qc.h(0).cx(0, 3).measure_all();
/// let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
/// let result = t.run(&qc).unwrap();
/// // Logical qubit 0 now lives on some physical qubit of the device.
/// let p = result.physical_qubit(0);
/// assert!(p < 7);
/// ```
#[derive(Debug, Clone)]
pub struct Transpiler {
    coupling: CouplingMap,
    level: OptimizationLevel,
    translate_basis: bool,
    routing: RoutingStrategy,
}

impl Transpiler {
    /// Creates a transpiler for the given device at the given level.
    pub fn new(coupling: CouplingMap, level: OptimizationLevel) -> Self {
        Transpiler {
            coupling,
            level,
            translate_basis: true,
            routing: RoutingStrategy::ShortestPath,
        }
    }

    /// Enables or disables the native-basis translation stage (useful for
    /// inspecting routed-but-untranslated circuits).
    pub fn with_basis_translation(mut self, enabled: bool) -> Self {
        self.translate_basis = enabled;
        self
    }

    /// Selects the SWAP-routing strategy (default: shortest-path walking).
    pub fn with_routing(mut self, strategy: RoutingStrategy) -> Self {
        self.routing = strategy;
        self
    }

    /// The device coupling map.
    pub fn coupling(&self) -> &CouplingMap {
        &self.coupling
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Fails when the circuit does not fit the device or the topology is
    /// disconnected.
    pub fn run(&self, qc: &QuantumCircuit) -> Result<TranspileResult, TranspileError> {
        self.coupling.check_capacity(qc.num_qubits())?;
        let decomposed = decompose_ccx(qc);
        let layout = match self.level {
            Level::Level0 | Level::Level1 => {
                Layout::trivial(qc.num_qubits(), self.coupling.num_qubits())
            }
            _ => Layout::dense(&self.coupling, qc.num_qubits()),
        };
        let routed = route_with(&decomposed, &self.coupling, layout, self.routing)?;
        let translated = if self.translate_basis {
            translate_to_basis(&routed.circuit)
        } else {
            routed.circuit.clone()
        };
        let optimized = optimize(&translated, self.level, self.translate_basis);
        Ok(TranspileResult {
            circuit: optimized,
            initial_layout: routed.initial_layout,
            final_layout: routed.final_layout,
            coupling: self.coupling.clone(),
            swaps_inserted: routed.swaps_inserted,
        })
    }
}

/// A transpiled circuit plus the logical↔physical bookkeeping.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    circuit: QuantumCircuit,
    initial_layout: Layout,
    final_layout: Layout,
    coupling: CouplingMap,
    swaps_inserted: usize,
}

impl TranspileResult {
    /// The physical circuit (width = device size).
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// The layout chosen before routing.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The layout after all routing SWAPs.
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Number of SWAPs routing inserted.
    pub fn swaps_inserted(&self) -> usize {
        self.swaps_inserted
    }

    /// Physical qubit hosting logical `l` at the end of the circuit.
    pub fn physical_qubit(&self, l: usize) -> usize {
        self.final_layout.physical(l)
    }

    /// Logical qubits whose **physical** hosts are coupled to logical `l`'s
    /// host — the candidate second-fault targets for a multi-qubit fault
    /// (paper §III-C / §IV-C).
    pub fn logical_neighbors(&self, l: usize) -> Vec<usize> {
        let p = self.final_layout.physical(l);
        self.coupling
            .neighbors(p)
            .iter()
            .filter_map(|&np| self.final_layout.logical_on(np))
            .collect()
    }

    /// All unordered logical pairs that are physically adjacent after
    /// transpilation — the double-injection candidate couples.
    pub fn coupled_logical_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for &(pa, pb) in self.coupling.edges() {
            if let (Some(la), Some(lb)) = (
                self.final_layout.logical_on(pa),
                self.final_layout.logical_on(pb),
            ) {
                pairs.push((la.min(lb), la.max(lb)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Physical qubits actually touched by the transpiled circuit, sorted.
    /// Simulators can restrict the register to these.
    pub fn active_physical_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.circuit.num_qubits()];
        for op in self.circuit.instructions() {
            match op {
                Op::Gate { qubits, .. } => {
                    for &q in qubits {
                        used[q] = true;
                    }
                }
                Op::Barrier(qs) => {
                    for &q in qs {
                        used[q] = true;
                    }
                }
                Op::Measure { qubit, .. } => used[*qubit] = true,
            }
        }
        // Mapped-but-idle qubits still count as active (they hold state).
        for l in 0..self.final_layout.num_logical() {
            used[self.final_layout.physical(l)] = true;
        }
        (0..used.len()).filter(|&q| used[q]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::is_native;
    use qufi_sim::{Gate, Statevector};

    fn bv3() -> QuantumCircuit {
        // Bernstein-Vazirani, secret 101, on 4 qubits (ancilla = q3).
        let mut qc = QuantumCircuit::new(4, 3);
        qc.x(3).h(0).h(1).h(2).h(3);
        qc.cx(0, 3).cx(2, 3);
        qc.h(0).h(1).h(2);
        qc.measure(0, 0).measure(1, 1).measure(2, 2);
        qc
    }

    fn check_equivalence(qc: &QuantumCircuit, result: &TranspileResult) {
        let golden = Statevector::from_circuit(qc)
            .unwrap()
            .measurement_distribution(qc);
        let actual = Statevector::from_circuit(result.circuit())
            .unwrap()
            .measurement_distribution(result.circuit());
        assert!(
            golden.tv_distance(&actual) < 1e-9,
            "transpile broke semantics"
        );
    }

    #[test]
    fn all_levels_preserve_semantics_on_h7() {
        let qc = bv3();
        for level in [Level::Level0, Level::Level1, Level::Level2, Level::Level3] {
            let t = Transpiler::new(CouplingMap::ibm_h7(), level);
            let result = t.run(&qc).unwrap();
            check_equivalence(&qc, &result);
        }
    }

    #[test]
    fn output_uses_only_native_gates_on_coupled_pairs() {
        let qc = bv3();
        let t = Transpiler::new(CouplingMap::ibm_h7(), Level::Level3);
        let result = t.run(&qc).unwrap();
        let cm = CouplingMap::ibm_h7();
        for op in result.circuit().instructions() {
            if let Op::Gate { gate, qubits } = op {
                assert!(is_native(*gate), "non-native {gate} in output");
                if qubits.len() == 2 {
                    assert!(
                        cm.are_coupled(qubits[0], qubits[1]),
                        "cx on uncoupled pair {qubits:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn level3_produces_fewer_or_equal_gates_than_level0() {
        let qc = bv3();
        let g0 = Transpiler::new(CouplingMap::ibm_h7(), Level::Level0)
            .run(&qc)
            .unwrap()
            .circuit()
            .gate_count();
        let g3 = Transpiler::new(CouplingMap::ibm_h7(), Level::Level3)
            .run(&qc)
            .unwrap()
            .circuit()
            .gate_count();
        assert!(g3 <= g0, "level3 ({g3}) worse than level0 ({g0})");
    }

    #[test]
    fn toffoli_is_transpilable() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).h(1).ccx(0, 1, 2).measure_all();
        let t = Transpiler::new(CouplingMap::line(3), Level::Level2);
        let result = t.run(&qc).unwrap();
        check_equivalence(&qc, &result);
    }

    #[test]
    fn neighbor_queries_are_consistent() {
        let qc = bv3();
        let t = Transpiler::new(CouplingMap::ibm_h7(), Level::Level3);
        let result = t.run(&qc).unwrap();
        let pairs = result.coupled_logical_pairs();
        assert!(!pairs.is_empty(), "dense layout must couple some qubits");
        for &(a, b) in &pairs {
            assert!(a < b && b < 4);
            assert!(result.logical_neighbors(a).contains(&b));
            assert!(result.logical_neighbors(b).contains(&a));
            // The physical hosts really are adjacent.
            let cm = CouplingMap::ibm_h7();
            assert!(cm.are_coupled(result.physical_qubit(a), result.physical_qubit(b)));
        }
    }

    #[test]
    fn active_qubits_cover_layout() {
        let qc = bv3();
        let t = Transpiler::new(CouplingMap::ibm_h7(), Level::Level3);
        let result = t.run(&qc).unwrap();
        let active = result.active_physical_qubits();
        for l in 0..4 {
            assert!(active.contains(&result.physical_qubit(l)));
        }
        assert!(active.len() >= 4);
    }

    #[test]
    fn basis_translation_can_be_disabled() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cz(0, 1);
        let t = Transpiler::new(CouplingMap::line(2), Level::Level0).with_basis_translation(false);
        let result = t.run(&qc).unwrap();
        let has_cz = result
            .circuit()
            .instructions()
            .any(|op| matches!(op, Op::Gate { gate: Gate::Cz, .. }));
        assert!(has_cz, "cz should survive with basis translation off");
    }

    #[test]
    fn too_wide_circuit_errors() {
        let qc = QuantumCircuit::new(9, 0);
        let t = Transpiler::new(CouplingMap::ibm_h7(), Level::Level1);
        assert!(matches!(
            t.run(&qc),
            Err(TranspileError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn seven_qubit_circuit_fills_device() {
        let mut qc = QuantumCircuit::new(7, 7);
        qc.h(0);
        for i in 0..6 {
            qc.cx(i, i + 1);
        }
        qc.measure_all();
        let t = Transpiler::new(CouplingMap::ibm_h7(), Level::Level3);
        let result = t.run(&qc).unwrap();
        check_equivalence(&qc, &result);
        assert_eq!(result.active_physical_qubits().len(), 7);
    }
}
