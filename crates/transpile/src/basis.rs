//! Basis translation to the IBM native gate set `{rz, sx, x, cx}`.
//!
//! On IBM hardware `rz` is a virtual frame change and `sx`/`x`/`cx` are the
//! calibrated pulses; everything else must be rewritten. Single-qubit gates
//! go through ZYZ decomposition (`U = e^{iα} RZ(φ)·RY(θ)·RZ(λ)` with
//! `RY(θ) = RZ(−π/2)·SX·RZ(π−θ)·SX·RZ(−π/2)` folded in); two-qubit gates use
//! the textbook CX-based identities; Toffoli uses the standard 6-CX network.

use qufi_math::{decompose::normalize_angle, zyz_decompose, CMatrix};
use qufi_sim::circuit::Op;
use qufi_sim::{Gate, QuantumCircuit};
use std::f64::consts::{FRAC_PI_2, PI};

/// `true` for gates the hardware executes natively.
pub fn is_native(gate: Gate) -> bool {
    matches!(gate, Gate::I | Gate::Rz(_) | Gate::Sx | Gate::X | Gate::Cx)
}

/// Decomposes an arbitrary single-qubit unitary into at most five native
/// gates (`rz`, `sx`), up to global phase. Near-identity rotations are
/// dropped entirely.
pub fn decompose_1q_matrix(u: &CMatrix) -> Vec<Gate> {
    let a = zyz_decompose(u);
    let theta = a.theta;
    let mut out = Vec::with_capacity(5);
    let push_rz = |out: &mut Vec<Gate>, angle: f64| {
        let angle = normalize_angle(angle);
        if angle.abs() > 1e-9 {
            out.push(Gate::Rz(angle));
        }
    };
    if theta.abs() < 1e-9 {
        // Pure phase rotation.
        push_rz(&mut out, a.phi + a.lambda);
    } else if (theta - FRAC_PI_2).abs() < 1e-9 {
        // One sx suffices: U = RZ(φ+π/2)·SX·RZ(λ−π/2) up to phase.
        push_rz(&mut out, a.lambda - FRAC_PI_2);
        out.push(Gate::Sx);
        push_rz(&mut out, a.phi + FRAC_PI_2);
    } else {
        // General case: U = RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ) up to phase.
        push_rz(&mut out, a.lambda);
        out.push(Gate::Sx);
        push_rz(&mut out, theta + PI);
        out.push(Gate::Sx);
        push_rz(&mut out, a.phi + PI);
    }
    out
}

/// Appends the native decomposition of `gate` on `qubits` to `out`.
///
/// # Panics
///
/// Panics on 3-qubit gates (run [`decompose_ccx`] first).
fn translate_gate(out: &mut QuantumCircuit, gate: Gate, qubits: &[usize]) {
    if is_native(gate) {
        if !matches!(gate, Gate::I) {
            out.append(gate, qubits);
        }
        return;
    }
    match gate {
        // Diagonal single-qubit gates become a bare rz.
        Gate::Z => {
            out.rz(PI, qubits[0]);
        }
        Gate::S => {
            out.rz(FRAC_PI_2, qubits[0]);
        }
        Gate::Sdg => {
            out.rz(-FRAC_PI_2, qubits[0]);
        }
        Gate::T => {
            out.rz(PI / 4.0, qubits[0]);
        }
        Gate::Tdg => {
            out.rz(-PI / 4.0, qubits[0]);
        }
        Gate::P(l) | Gate::Rz(l) => {
            out.rz(l, qubits[0]);
        }
        // Other 1q gates go through ZYZ.
        g if g.num_qubits() == 1 => {
            for native in decompose_1q_matrix(&g.matrix()) {
                out.append(native, qubits);
            }
        }
        // CZ = (I⊗H)·CX·(I⊗H) with H expanded natively.
        Gate::Cz => {
            let (c, t) = (qubits[0], qubits[1]);
            for native in decompose_1q_matrix(&CMatrix::hadamard()) {
                out.append(native, &[t]);
            }
            out.cx(c, t);
            for native in decompose_1q_matrix(&CMatrix::hadamard()) {
                out.append(native, &[t]);
            }
        }
        // SWAP = 3 alternating CX.
        Gate::Swap => {
            let (a, b) = (qubits[0], qubits[1]);
            out.cx(a, b).cx(b, a).cx(a, b);
        }
        // CP(λ) = RZ(λ/2)_c · CX · RZ(−λ/2)_t · CX · RZ(λ/2)_t (up to phase).
        Gate::Cp(l) => {
            let (c, t) = (qubits[0], qubits[1]);
            out.rz(l / 2.0, c);
            out.cx(c, t);
            out.rz(-l / 2.0, t);
            out.cx(c, t);
            out.rz(l / 2.0, t);
        }
        Gate::Ccx => panic!("decompose_ccx must run before basis translation"),
        _ => unreachable!("native gates handled above"),
    }
}

/// Rewrites a circuit into the native basis. Barriers and measurements pass
/// through; `id` gates are dropped.
///
/// # Panics
///
/// Panics if a Toffoli survives (run [`decompose_ccx`] first).
pub fn translate_to_basis(qc: &QuantumCircuit) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } => translate_gate(&mut out, *gate, qubits),
            Op::Barrier(qs) => {
                out.barrier(qs);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(*qubit, *clbit);
            }
        }
    }
    out
}

/// Replaces every Toffoli with the standard 6-CX + T network; other
/// operations pass through unchanged.
pub fn decompose_ccx(qc: &QuantumCircuit) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    for op in qc.instructions() {
        match op {
            Op::Gate {
                gate: Gate::Ccx,
                qubits,
            } => {
                let (a, b, c) = (qubits[0], qubits[1], qubits[2]);
                out.h(c)
                    .cx(b, c)
                    .tdg(c)
                    .cx(a, c)
                    .t(c)
                    .cx(b, c)
                    .tdg(c)
                    .cx(a, c)
                    .t(b)
                    .t(c)
                    .h(c)
                    .cx(a, b)
                    .t(a)
                    .tdg(b)
                    .cx(a, b);
            }
            Op::Gate { gate, qubits } => {
                out.append(*gate, qubits);
            }
            Op::Barrier(qs) => {
                out.barrier(qs);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(*qubit, *clbit);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_math::Complex;
    use qufi_sim::Statevector;

    /// Builds the full unitary of a circuit column by column via simulation.
    fn circuit_unitary(qc: &QuantumCircuit) -> CMatrix {
        let n = qc.num_qubits();
        let dim = 1 << n;
        let mut m = CMatrix::zeros(dim, dim);
        for col in 0..dim {
            let mut amps = vec![Complex::ZERO; dim];
            amps[col] = Complex::ONE;
            let mut sv = Statevector::from_amplitudes(amps);
            for op in qc.instructions() {
                if let Op::Gate { gate, qubits } = op {
                    sv.apply_gate(*gate, qubits);
                }
            }
            for row in 0..dim {
                m[(row, col)] = sv.amp(row);
            }
        }
        m
    }

    fn gates_matrix(gates: &[Gate]) -> CMatrix {
        let mut m = CMatrix::identity(2);
        for g in gates {
            m = g.matrix().matmul(&m);
        }
        m
    }

    #[test]
    fn decompose_1q_covers_named_gates() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.9),
            Gate::U(0.4, 2.2, 5.1),
        ] {
            let native = decompose_1q_matrix(&g.matrix());
            assert!(native.len() <= 5, "{g} used {} gates", native.len());
            assert!(
                native.iter().all(|&x| is_native(x)),
                "{g} produced non-native gates"
            );
            assert!(
                gates_matrix(&native).approx_eq_up_to_phase(&g.matrix(), 1e-9),
                "{g} decomposition wrong"
            );
        }
    }

    #[test]
    fn identity_decomposes_to_nothing() {
        assert!(decompose_1q_matrix(&CMatrix::identity(2)).is_empty());
    }

    #[test]
    fn u_gate_grid_decomposition() {
        for i in 0..6 {
            for j in 0..6 {
                let g = Gate::U(PI * i as f64 / 5.0, 2.0 * PI * j as f64 / 6.0, 0.0);
                let native = decompose_1q_matrix(&g.matrix());
                assert!(gates_matrix(&native).approx_eq_up_to_phase(&g.matrix(), 1e-9));
            }
        }
    }

    #[test]
    fn translate_preserves_two_qubit_semantics() {
        for gate in [Gate::Cz, Gate::Swap, Gate::Cp(0.9), Gate::Cp(-2.3)] {
            let mut qc = QuantumCircuit::new(2, 0);
            qc.append(gate, &[0, 1]);
            let native = translate_to_basis(&qc);
            for op in native.instructions() {
                if let Op::Gate { gate, .. } = op {
                    assert!(is_native(*gate), "non-native {gate} survived");
                }
            }
            assert!(
                circuit_unitary(&native).approx_eq_up_to_phase(&circuit_unitary(&qc), 1e-9),
                "{gate} translation wrong"
            );
        }
    }

    #[test]
    fn translate_full_circuit_matches_original() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0)
            .t(1)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .cp(1.3, 0, 2)
            .y(1)
            .sdg(2)
            .measure_all();
        let native = translate_to_basis(&qc);
        let a = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let b = Statevector::from_circuit(&native)
            .unwrap()
            .measurement_distribution(&native);
        assert!(a.tv_distance(&b) < 1e-9);
    }

    #[test]
    fn ccx_network_is_exact() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let decomposed = decompose_ccx(&qc);
        assert!(circuit_unitary(&decomposed).approx_eq_up_to_phase(&circuit_unitary(&qc), 1e-9));
        // All remaining gates are 1- or 2-qubit.
        for op in decomposed.instructions() {
            if let Op::Gate { gate, .. } = op {
                assert!(gate.num_qubits() <= 2);
            }
        }
    }

    #[test]
    fn id_gates_dropped() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.i(0).h(0).i(0);
        let native = translate_to_basis(&qc);
        assert!(native
            .instructions()
            .all(|op| !matches!(op, Op::Gate { gate: Gate::I, .. })));
    }

    #[test]
    fn diagonal_gates_become_single_rz() {
        for g in [Gate::Z, Gate::S, Gate::T, Gate::Tdg, Gate::P(0.8)] {
            let mut qc = QuantumCircuit::new(1, 0);
            qc.append(g, &[0]);
            let native = translate_to_basis(&qc);
            assert_eq!(native.gate_count(), 1, "{g}");
            assert!(matches!(
                native.ops()[0],
                Op::Gate {
                    gate: Gate::Rz(_),
                    ..
                }
            ));
        }
    }
}
