//! SWAP routing.
//!
//! Rewrites a logical circuit into a physical one in which every two-qubit
//! gate acts on a coupled pair, inserting SWAP chains along BFS shortest
//! paths and updating the logical→physical layout as qubits move.

use crate::error::TranspileError;
use crate::layout::Layout;
use crate::topology::CouplingMap;
use qufi_sim::circuit::Op;
use qufi_sim::QuantumCircuit;

/// The output of routing: the physical circuit and the layout evolution.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// Circuit over *physical* qubits (width = device size).
    pub circuit: QuantumCircuit,
    /// Layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate (differs when SWAPs were inserted).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// How the router picks SWAPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingStrategy {
    /// Walk the first operand along a BFS shortest path (simple, greedy).
    #[default]
    ShortestPath,
    /// SABRE-style lookahead: pick the SWAP that most reduces the summed
    /// distance of the next `window` two-qubit gates (exponentially
    /// decayed). Falls back to a shortest-path step when no SWAP improves.
    Lookahead {
        /// How many upcoming 2-qubit gates to score.
        window: usize,
    },
}

/// Routes `qc` onto `cm` starting from `initial_layout`.
///
/// # Errors
///
/// Fails when the device is too small/disconnected or a gate with more than
/// two operands reaches the router (decompose first).
pub fn route(
    qc: &QuantumCircuit,
    cm: &CouplingMap,
    initial_layout: Layout,
) -> Result<RoutedCircuit, TranspileError> {
    route_with(qc, cm, initial_layout, RoutingStrategy::ShortestPath)
}

/// The upcoming 2-qubit gates (as logical pairs) starting at op `from`.
fn future_pairs(qc: &QuantumCircuit, from: usize, window: usize) -> Vec<(usize, usize)> {
    qc.ops()[from..]
        .iter()
        .filter_map(|op| match op {
            Op::Gate { qubits, .. } if qubits.len() == 2 => Some((qubits[0], qubits[1])),
            _ => None,
        })
        .take(window)
        .collect()
}

/// Decayed distance cost of the pending gates under a layout.
fn lookahead_cost(cm: &CouplingMap, layout: &Layout, pairs: &[(usize, usize)]) -> f64 {
    pairs
        .iter()
        .enumerate()
        .map(|(k, &(a, b))| {
            let d = cm.distance(layout.physical(a), layout.physical(b)) as f64;
            d * 0.5f64.powi(k as i32)
        })
        .sum()
}

/// Routes with an explicit SWAP-selection strategy.
///
/// # Errors
///
/// Same failure modes as [`route`].
pub fn route_with(
    qc: &QuantumCircuit,
    cm: &CouplingMap,
    initial_layout: Layout,
    strategy: RoutingStrategy,
) -> Result<RoutedCircuit, TranspileError> {
    cm.check_capacity(qc.num_qubits())?;
    let mut layout = initial_layout.clone();
    let mut out = QuantumCircuit::with_name(cm.num_qubits(), qc.num_clbits(), &qc.name);

    for (op_idx, op) in qc.instructions().enumerate() {
        match op {
            Op::Gate { gate, qubits } => match qubits.len() {
                1 => {
                    out.append(*gate, &[layout.physical(qubits[0])]);
                }
                2 => {
                    let (l0, l1) = (qubits[0], qubits[1]);
                    match strategy {
                        RoutingStrategy::ShortestPath => {
                            let mut p0 = layout.physical(l0);
                            let p1 = layout.physical(l1);
                            if !cm.are_coupled(p0, p1) {
                                let path = cm
                                    .shortest_path(p0, p1)
                                    .ok_or(TranspileError::DisconnectedTopology)?;
                                // Walk the first operand toward the second
                                // until the pair is adjacent.
                                for &hop in &path[1..path.len() - 1] {
                                    out.append(qufi_sim::Gate::Swap, &[p0, hop]);
                                    layout.swap_physical(p0, hop);
                                    p0 = hop;
                                }
                            }
                        }
                        RoutingStrategy::Lookahead { window } => {
                            let pairs = future_pairs(qc, op_idx, window.max(1));
                            let mut guard = 0usize;
                            while !cm.are_coupled(layout.physical(l0), layout.physical(l1)) {
                                let p0 = layout.physical(l0);
                                let p1 = layout.physical(l1);
                                guard += 1;
                                let base = lookahead_cost(cm, &layout, &pairs);
                                let mut best: Option<(f64, (usize, usize))> = None;
                                if guard <= 4 * cm.num_qubits() {
                                    for &p in &[p0, p1] {
                                        for &nb in cm.neighbors(p) {
                                            let mut trial = layout.clone();
                                            trial.swap_physical(p, nb);
                                            let cost = lookahead_cost(cm, &trial, &pairs);
                                            let edge = (p.min(nb), p.max(nb));
                                            let better = match best {
                                                None => true,
                                                Some((c, e)) => {
                                                    cost < c - 1e-12
                                                        || (cost < c + 1e-12 && edge < e)
                                                }
                                            };
                                            if better {
                                                best = Some((cost, edge));
                                            }
                                        }
                                    }
                                }
                                match best {
                                    Some((cost, (a, b))) if cost < base - 1e-12 => {
                                        out.append(qufi_sim::Gate::Swap, &[a, b]);
                                        layout.swap_physical(a, b);
                                    }
                                    _ => {
                                        // No improving SWAP (or guard blown):
                                        // take one guaranteed-progress step.
                                        let path = cm
                                            .shortest_path(p0, p1)
                                            .ok_or(TranspileError::DisconnectedTopology)?;
                                        out.append(qufi_sim::Gate::Swap, &[p0, path[1]]);
                                        layout.swap_physical(p0, path[1]);
                                    }
                                }
                            }
                        }
                    }
                    out.append(*gate, &[layout.physical(l0), layout.physical(l1)]);
                }
                n => {
                    return Err(TranspileError::UnroutableGate(format!(
                        "{} ({n} operands)",
                        gate.name()
                    )));
                }
            },
            Op::Barrier(qs) => {
                let mapped: Vec<usize> = qs.iter().map(|&q| layout.physical(q)).collect();
                out.barrier(&mapped);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(layout.physical(*qubit), *clbit);
            }
        }
    }
    let swaps_inserted = out
        .ops()
        .iter()
        .filter(|op| matches!(op, Op::Gate { gate, .. } if matches!(gate, qufi_sim::Gate::Swap)))
        .count()
        .saturating_sub(
            qc.ops()
                .iter()
                .filter(
                    |op| matches!(op, Op::Gate { gate, .. } if matches!(gate, qufi_sim::Gate::Swap)),
                )
                .count(),
        );
    Ok(RoutedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    /// Simulates a routed physical circuit and compares its measured
    /// distribution against the logical circuit's, undoing the layout.
    fn assert_equivalent(qc: &QuantumCircuit, cm: &CouplingMap, layout: Layout) {
        let routed = route(qc, cm, layout).expect("routable");
        // Golden: logical circuit measured through its own map.
        let golden = Statevector::from_circuit(qc)
            .unwrap()
            .measurement_distribution(qc);
        let actual = Statevector::from_circuit(&routed.circuit)
            .unwrap()
            .measurement_distribution(&routed.circuit);
        assert!(
            golden.tv_distance(&actual) < 1e-9,
            "routing changed semantics: {golden:?} vs {actual:?}"
        );
    }

    #[test]
    fn coupled_gates_pass_through() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let cm = CouplingMap::line(2);
        let routed = route(&qc, &cm, Layout::trivial(2, 2)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.gate_count(), 2);
    }

    #[test]
    fn distant_cx_inserts_swaps_and_preserves_semantics() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 2).measure_all();
        let cm = CouplingMap::line(3);
        let routed = route(&qc, &cm, Layout::trivial(3, 3)).unwrap();
        assert_eq!(routed.swaps_inserted, 1);
        assert_equivalent(&qc, &cm, Layout::trivial(3, 3));
    }

    #[test]
    fn final_layout_tracks_movement() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.cx(0, 2);
        let cm = CouplingMap::line(3);
        let routed = route(&qc, &cm, Layout::trivial(3, 3)).unwrap();
        // Logical 0 moved from physical 0 to physical 1.
        assert_eq!(routed.final_layout.physical(0), 1);
        assert_eq!(routed.initial_layout.physical(0), 0);
    }

    #[test]
    fn measurements_follow_the_moved_qubit() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.x(0).cx(0, 2).measure_all();
        let cm = CouplingMap::line(3);
        assert_equivalent(&qc, &cm, Layout::trivial(3, 3));
    }

    #[test]
    fn routing_on_h7_with_dense_layout() {
        let cm = CouplingMap::ibm_h7();
        let mut qc = QuantumCircuit::new(4, 4);
        qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3).measure_all();
        let layout = Layout::dense(&cm, 4);
        assert_equivalent(&qc, &cm, layout);
    }

    #[test]
    fn long_chain_on_ring() {
        let cm = CouplingMap::ring(5);
        let mut qc = QuantumCircuit::new(5, 5);
        qc.h(0);
        for i in 0..4 {
            qc.cx(i, i + 1);
        }
        qc.cx(0, 2).cx(4, 1).measure_all();
        assert_equivalent(&qc, &cm, Layout::trivial(5, 5));
    }

    #[test]
    fn too_wide_rejected() {
        let qc = QuantumCircuit::new(4, 0);
        let cm = CouplingMap::line(3);
        assert!(matches!(
            route(&qc, &cm, Layout::trivial(3, 3)),
            Err(TranspileError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn three_qubit_gate_rejected() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let cm = CouplingMap::line(3);
        assert!(matches!(
            route(&qc, &cm, Layout::trivial(3, 3)),
            Err(TranspileError::UnroutableGate(_))
        ));
    }

    #[test]
    fn lookahead_preserves_semantics() {
        let cm = CouplingMap::line(4);
        let mut qc = QuantumCircuit::new(4, 4);
        qc.h(0).cx(0, 3).cx(1, 3).cx(0, 2).measure_all();
        let routed = route_with(
            &qc,
            &cm,
            Layout::trivial(4, 4),
            RoutingStrategy::Lookahead { window: 4 },
        )
        .unwrap();
        let golden = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let actual = Statevector::from_circuit(&routed.circuit)
            .unwrap()
            .measurement_distribution(&routed.circuit);
        assert!(golden.tv_distance(&actual) < 1e-9);
        // Every 2q gate in the output is on a coupled pair.
        for op in routed.circuit.instructions() {
            if let Op::Gate { qubits, .. } = op {
                if qubits.len() == 2 {
                    assert!(cm.are_coupled(qubits[0], qubits[1]));
                }
            }
        }
    }

    #[test]
    fn lookahead_beats_greedy_on_repeated_distant_pair() {
        // Greedy walks q0 to q3 and BACK-AND-FORTH state means later gates
        // benefit from where lookahead parks the qubits: repeating cx(0,3)
        // twice after a cx(0,1) forces greedy to pay per occurrence while
        // lookahead's parked layout reuses adjacency.
        let cm = CouplingMap::line(5);
        let mut qc = QuantumCircuit::new(5, 0);
        qc.cx(0, 4).cx(0, 4).cx(0, 4);
        let greedy = route_with(
            &qc,
            &cm,
            Layout::trivial(5, 5),
            RoutingStrategy::ShortestPath,
        )
        .unwrap();
        let smart = route_with(
            &qc,
            &cm,
            Layout::trivial(5, 5),
            RoutingStrategy::Lookahead { window: 8 },
        )
        .unwrap();
        assert!(
            smart.swaps_inserted <= greedy.swaps_inserted,
            "lookahead {} vs greedy {}",
            smart.swaps_inserted,
            greedy.swaps_inserted
        );
        // Both stay correct.
        let a = Statevector::from_circuit(&greedy.circuit)
            .unwrap()
            .probabilities();
        let b = Statevector::from_circuit(&smart.circuit)
            .unwrap()
            .probabilities();
        assert!(a.tv_distance(&b) < 1e-9);
    }

    #[test]
    fn lookahead_on_already_routable_circuit_adds_nothing() {
        let cm = CouplingMap::ibm_h7();
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let routed = route_with(
            &qc,
            &cm,
            Layout::trivial(2, 7),
            RoutingStrategy::Lookahead { window: 3 },
        )
        .unwrap();
        assert_eq!(routed.swaps_inserted, 0);
    }

    #[test]
    fn device_wider_than_circuit() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let cm = CouplingMap::ibm_h7();
        let routed = route(&qc, &cm, Layout::dense(&cm, 2)).unwrap();
        assert_eq!(routed.circuit.num_qubits(), 7);
        let golden = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let actual = Statevector::from_circuit(&routed.circuit)
            .unwrap()
            .measurement_distribution(&routed.circuit);
        assert!(golden.tv_distance(&actual) < 1e-9);
    }
}
