//! Device coupling maps.
//!
//! A coupling map is the undirected graph of physical qubit pairs that can
//! host a two-qubit gate. The paper's machines (Casablanca, Jakarta) share
//! the 7-qubit "H" topology drawn in its Fig. 1; generators for lines,
//! rings, grids and fully-connected graphs support the scaling studies and
//! tests.

use crate::error::TranspileError;

/// An undirected coupling graph over physical qubits.
///
/// # Example
///
/// ```
/// use qufi_transpile::CouplingMap;
///
/// let cm = CouplingMap::ibm_h7();
/// assert_eq!(cm.num_qubits(), 7);
/// assert!(cm.are_coupled(1, 3));
/// assert!(!cm.are_coupled(0, 6));
/// assert_eq!(cm.distance(0, 6), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CouplingMap {
    n: usize,
    /// Sorted unique undirected edges `(min, max)`.
    edges: Vec<(usize, usize)>,
    /// Adjacency lists.
    adj: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a map over `n` qubits from an edge list (direction and
    /// duplicates are normalized away).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(a, b)| {
                assert!(a != b, "self-loop edge ({a},{b})");
                assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} qubits");
                (a.min(b), a.max(b))
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &norm {
            adj[a].push(b);
            adj[b].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        CouplingMap {
            n,
            edges: norm,
            adj,
        }
    }

    /// The 7-qubit "H" topology of IBM Falcon devices (Casablanca, Jakarta):
    ///
    /// ```text
    /// 0 - 1 - 2
    ///     |
    ///     3
    ///     |
    /// 4 - 5 - 6
    /// ```
    pub fn ibm_h7() -> Self {
        CouplingMap::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)])
    }

    /// The 5-qubit "T" topology (Lima, Belem, Quito).
    pub fn ibm_t5() -> Self {
        CouplingMap::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)])
    }

    /// A linear chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::from_edges(n, &edges)
    }

    /// A ring of `n ≥ 3` qubits.
    ///
    /// # Panics
    ///
    /// Panics for `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 qubits");
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        CouplingMap::from_edges(n, &edges)
    }

    /// A `rows × cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        CouplingMap::from_edges(rows * cols, &edges)
    }

    /// All-to-all connectivity (an idealized device; routing becomes a
    /// no-op, useful for ablations).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        CouplingMap::from_edges(n, &edges)
    }

    /// Number of physical qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The normalized undirected edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// `true` when `a` and `b` share an edge.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// BFS hop distance between two qubits; `usize::MAX` if unreachable.
    pub fn distance(&self, from: usize, to: usize) -> usize {
        if from == to {
            return 0;
        }
        let mut dist = vec![usize::MAX; self.n];
        dist[from] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == to {
                        return dist[v];
                    }
                    queue.push_back(v);
                }
            }
        }
        usize::MAX
    }

    /// A shortest path from `from` to `to` (inclusive of both endpoints),
    /// or `None` when unreachable.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.n];
        let mut seen = vec![false; self.n];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// `true` when every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        seen[0] = true;
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.n
    }

    /// Validates the map can host a `width`-qubit circuit.
    ///
    /// # Errors
    ///
    /// [`TranspileError::CircuitTooWide`] or
    /// [`TranspileError::DisconnectedTopology`].
    pub fn check_capacity(&self, width: usize) -> Result<(), TranspileError> {
        if width > self.n {
            return Err(TranspileError::CircuitTooWide {
                needed: width,
                available: self.n,
            });
        }
        if width > 1 && !self.is_connected() {
            return Err(TranspileError::DisconnectedTopology);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h7_structure() {
        let cm = CouplingMap::ibm_h7();
        assert_eq!(cm.edges().len(), 6);
        assert_eq!(cm.neighbors(1), &[0, 2, 3]);
        assert_eq!(cm.neighbors(5), &[3, 4, 6]);
        assert!(cm.is_connected());
    }

    #[test]
    fn distances_on_h7() {
        let cm = CouplingMap::ibm_h7();
        assert_eq!(cm.distance(0, 0), 0);
        assert_eq!(cm.distance(0, 2), 2);
        assert_eq!(cm.distance(2, 4), 4);
        assert_eq!(cm.distance(4, 6), 2);
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let cm = CouplingMap::ibm_h7();
        let p = cm.shortest_path(0, 6).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&6));
        assert_eq!(p.len(), 5); // distance 4 -> 5 nodes
        for w in p.windows(2) {
            assert!(cm.are_coupled(w[0], w[1]));
        }
    }

    #[test]
    fn duplicate_and_reversed_edges_normalized() {
        let cm = CouplingMap::from_edges(3, &[(1, 0), (0, 1), (2, 1)]);
        assert_eq!(cm.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn generators_shapes() {
        assert_eq!(CouplingMap::line(5).edges().len(), 4);
        assert_eq!(CouplingMap::ring(5).edges().len(), 5);
        assert_eq!(CouplingMap::grid(2, 3).edges().len(), 7);
        assert_eq!(CouplingMap::full(4).edges().len(), 6);
        assert!(CouplingMap::grid(3, 3).is_connected());
    }

    #[test]
    fn ring_wraparound_distance() {
        let cm = CouplingMap::ring(6);
        assert_eq!(cm.distance(0, 5), 1);
        assert_eq!(cm.distance(0, 3), 3);
    }

    #[test]
    fn disconnected_detection() {
        let cm = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!cm.is_connected());
        assert_eq!(cm.distance(0, 3), usize::MAX);
        assert!(cm.shortest_path(0, 3).is_none());
        assert!(matches!(
            cm.check_capacity(3),
            Err(TranspileError::DisconnectedTopology)
        ));
    }

    #[test]
    fn capacity_check() {
        let cm = CouplingMap::line(3);
        assert!(cm.check_capacity(3).is_ok());
        assert!(matches!(
            cm.check_capacity(4),
            Err(TranspileError::CircuitTooWide { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = CouplingMap::from_edges(2, &[(1, 1)]);
    }
}
