//! Peephole optimization passes.
//!
//! Three passes mirror the workhorses of Qiskit's higher optimization
//! levels: inverse-pair cancellation (`H·H`, `CX·CX`, `T·T†` …), rotation
//! merging (`RZ(a)·RZ(b) → RZ(a+b)`), and single-qubit-run fusion (multiply
//! the run's matrices, drop it when the product is the identity, otherwise
//! resynthesize a minimal sequence).

use crate::basis::decompose_1q_matrix;
use qufi_math::{decompose::normalize_angle, zyz_decompose, CMatrix};
use qufi_sim::circuit::Op;
use qufi_sim::{Gate, QuantumCircuit};

/// How hard the optimizer works; matches Qiskit's levels in spirit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Level {
    /// No optimization.
    Level0,
    /// Inverse-pair cancellation and rotation merging.
    Level1,
    /// Level 1 plus one round of single-qubit-run fusion.
    Level2,
    /// All passes iterated to a fixpoint (the paper's setting).
    #[default]
    Level3,
}

/// Runs the optimization pipeline at the given level. `native` controls
/// whether fused runs are resynthesized into `{rz, sx}` (true) or a single
/// `U` gate (false).
pub fn optimize(qc: &QuantumCircuit, level: Level, native: bool) -> QuantumCircuit {
    match level {
        Level::Level0 => qc.clone(),
        Level::Level1 => {
            let qc = run_to_fixpoint(qc, cancel_inverse_pairs, 10);
            merge_rotations(&qc)
        }
        Level::Level2 => {
            let qc = run_to_fixpoint(qc, cancel_inverse_pairs, 10);
            let qc = merge_rotations(&qc);
            let qc = fuse_single_qubit_runs(&qc, native);
            run_to_fixpoint(&qc, cancel_inverse_pairs, 10)
        }
        Level::Level3 => {
            let mut cur = qc.clone();
            for _ in 0..10 {
                let next = fuse_single_qubit_runs(
                    &merge_rotations(&run_to_fixpoint(&cur, cancel_inverse_pairs, 10)),
                    native,
                );
                if next == cur {
                    break;
                }
                cur = next;
            }
            cur
        }
    }
}

fn run_to_fixpoint(
    qc: &QuantumCircuit,
    pass: fn(&QuantumCircuit) -> QuantumCircuit,
    max_iter: usize,
) -> QuantumCircuit {
    let mut cur = qc.clone();
    for _ in 0..max_iter {
        let next = pass(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn params_match(a: Gate, b: Gate) -> bool {
    let (pa, pb) = (a.params(), b.params());
    pa.len() == pb.len() && pa.iter().zip(&pb).all(|(x, y)| (x - y).abs() < 1e-12)
}

/// Removes adjacent gate pairs `G · G⁻¹` acting on identical operand lists.
pub fn cancel_inverse_pairs(qc: &QuantumCircuit) -> QuantumCircuit {
    let mut out: Vec<Option<Op>> = Vec::with_capacity(qc.size());
    // last[q] = index in `out` of the most recent op touching qubit q.
    let mut last: Vec<Option<usize>> = vec![None; qc.num_qubits()];

    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } => {
                // Candidate for cancellation: all operands point at the same
                // previous instruction, which is our inverse on the same
                // operand list.
                let candidate = qubits
                    .iter()
                    .map(|&q| last[q])
                    .collect::<Option<Vec<usize>>>()
                    .and_then(|idxs| {
                        let first = idxs[0];
                        idxs.iter().all(|&i| i == first).then_some(first)
                    });
                if let Some(j) = candidate {
                    if let Some(Op::Gate {
                        gate: prev,
                        qubits: prev_qs,
                    }) = &out[j]
                    {
                        let inv = gate.inverse();
                        if prev_qs == qubits
                            && std::mem::discriminant(prev) == std::mem::discriminant(&inv)
                            && params_match(*prev, inv)
                        {
                            out[j] = None;
                            for &q in qubits {
                                last[q] = None;
                            }
                            continue;
                        }
                    }
                }
                let idx = out.len();
                out.push(Some(op.clone()));
                for &q in qubits {
                    last[q] = Some(idx);
                }
            }
            Op::Barrier(qs) => {
                let idx = out.len();
                out.push(Some(op.clone()));
                for &q in qs {
                    last[q] = Some(idx);
                }
            }
            Op::Measure { qubit, .. } => {
                let idx = out.len();
                out.push(Some(op.clone()));
                last[*qubit] = Some(idx);
            }
        }
    }
    rebuild(qc, out.into_iter().flatten())
}

/// Merges adjacent `rz`/`p` rotations on the same qubit and `cp` rotations on
/// the same ordered pair; zero-angle results are dropped.
pub fn merge_rotations(qc: &QuantumCircuit) -> QuantumCircuit {
    let mut out: Vec<Option<Op>> = Vec::with_capacity(qc.size());
    let mut last: Vec<Option<usize>> = vec![None; qc.num_qubits()];

    for op in qc.instructions() {
        if let Op::Gate { gate, qubits } = op {
            let mergeable = matches!(gate, Gate::Rz(_) | Gate::P(_) | Gate::Cp(_));
            if mergeable {
                let candidate = qubits
                    .iter()
                    .map(|&q| last[q])
                    .collect::<Option<Vec<usize>>>()
                    .and_then(|idxs| {
                        let first = idxs[0];
                        idxs.iter().all(|&i| i == first).then_some(first)
                    });
                if let Some(j) = candidate {
                    if let Some(Op::Gate {
                        gate: prev,
                        qubits: prev_qs,
                    }) = &out[j]
                    {
                        let merged = match (*prev, *gate) {
                            (Gate::Rz(a), Gate::Rz(b)) if prev_qs == qubits => {
                                Some(Gate::Rz(normalize_angle(a + b)))
                            }
                            (Gate::P(a), Gate::P(b)) if prev_qs == qubits => {
                                Some(Gate::P(normalize_angle(a + b)))
                            }
                            (Gate::Cp(a), Gate::Cp(b)) if same_pair(prev_qs, qubits) => {
                                Some(Gate::Cp(normalize_angle(a + b)))
                            }
                            _ => None,
                        };
                        if let Some(m) = merged {
                            if m.params()[0].abs() < 1e-12 {
                                out[j] = None;
                                for &q in qubits {
                                    last[q] = None;
                                }
                            } else {
                                out[j] = Some(Op::Gate {
                                    gate: m,
                                    qubits: prev_qs.clone(),
                                });
                            }
                            continue;
                        }
                    }
                }
            }
        }
        let idx = out.len();
        let touched: Vec<usize> = match op {
            Op::Gate { qubits, .. } => qubits.clone(),
            Op::Barrier(qs) => qs.clone(),
            Op::Measure { qubit, .. } => vec![*qubit],
        };
        out.push(Some(op.clone()));
        for q in touched {
            last[q] = Some(idx);
        }
    }
    rebuild(qc, out.into_iter().flatten())
}

/// `cp` is symmetric: control/target order does not matter.
fn same_pair(a: &[usize], b: &[usize]) -> bool {
    a.len() == 2 && b.len() == 2 && (a == b || (a[0] == b[1] && a[1] == b[0]))
}

/// Fuses maximal runs of single-qubit gates into a minimal resynthesis;
/// identity runs vanish.
pub fn fuse_single_qubit_runs(qc: &QuantumCircuit, native: bool) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    let mut pending: Vec<Vec<Gate>> = vec![Vec::new(); qc.num_qubits()];

    let flush = |out: &mut QuantumCircuit, pending: &mut Vec<Vec<Gate>>, q: usize| {
        let run = std::mem::take(&mut pending[q]);
        if run.is_empty() {
            return;
        }
        if run.len() == 1 && !matches!(run[0], Gate::I) {
            out.append(run[0], &[q]);
            return;
        }
        let mut m = CMatrix::identity(2);
        for g in &run {
            m = g.matrix().matmul(&m);
        }
        if m.approx_eq_up_to_phase(&CMatrix::identity(2), 1e-10) {
            return;
        }
        if native {
            for g in decompose_1q_matrix(&m) {
                out.append(g, &[q]);
            }
        } else {
            let a = zyz_decompose(&m);
            out.u(a.theta, a.phi, a.lambda, q);
        }
    };

    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } if qubits.len() == 1 => {
                pending[qubits[0]].push(*gate);
            }
            Op::Gate { gate, qubits } => {
                for &q in qubits {
                    flush(&mut out, &mut pending, q);
                }
                out.append(*gate, qubits);
            }
            Op::Barrier(qs) => {
                for &q in qs {
                    flush(&mut out, &mut pending, q);
                }
                out.barrier(qs);
            }
            Op::Measure { qubit, clbit } => {
                flush(&mut out, &mut pending, *qubit);
                out.measure(*qubit, *clbit);
            }
        }
    }
    for q in 0..qc.num_qubits() {
        flush(&mut out, &mut pending, q);
    }
    out
}

fn rebuild<I: IntoIterator<Item = Op>>(qc: &QuantumCircuit, ops: I) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    for op in ops {
        match op {
            Op::Gate { gate, qubits } => {
                out.append(gate, &qubits);
            }
            Op::Barrier(qs) => {
                out.barrier(&qs);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(qubit, clbit);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;

    fn equivalent(a: &QuantumCircuit, b: &QuantumCircuit) -> bool {
        let pa = Statevector::from_circuit(a).unwrap().probabilities();
        let pb = Statevector::from_circuit(b).unwrap().probabilities();
        pa.tv_distance(&pb) < 1e-9
    }

    #[test]
    fn hh_cancels() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).h(0);
        let opt = cancel_inverse_pairs(&qc);
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn cx_pair_cancels_only_with_same_orientation() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cx(0, 1).cx(0, 1);
        assert_eq!(cancel_inverse_pairs(&qc).gate_count(), 0);

        let mut qc2 = QuantumCircuit::new(2, 0);
        qc2.cx(0, 1).cx(1, 0);
        assert_eq!(cancel_inverse_pairs(&qc2).gate_count(), 2);
    }

    #[test]
    fn t_tdg_cancels() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.t(0).tdg(0);
        assert_eq!(cancel_inverse_pairs(&qc).gate_count(), 0);
    }

    #[test]
    fn rz_pair_cancels_only_when_opposite() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.rz(0.7, 0).rz(-0.7, 0);
        assert_eq!(cancel_inverse_pairs(&qc).gate_count(), 0);
        let mut qc2 = QuantumCircuit::new(1, 0);
        qc2.rz(0.7, 0).rz(0.6, 0);
        assert_eq!(cancel_inverse_pairs(&qc2).gate_count(), 2);
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).h(0);
        assert_eq!(cancel_inverse_pairs(&qc).gate_count(), 3);
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).barrier(&[0]).h(0);
        assert_eq!(cancel_inverse_pairs(&qc).gate_count(), 2);
    }

    #[test]
    fn nested_pairs_cancel_across_iterations() {
        // X H H X -> X X -> nothing (needs two passes).
        let mut qc = QuantumCircuit::new(1, 0);
        qc.x(0).h(0).h(0).x(0);
        let opt = run_to_fixpoint(&qc, cancel_inverse_pairs, 10);
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn rotations_merge_and_vanish() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0);
        let opt = merge_rotations(&qc);
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn cp_merges_regardless_of_operand_order() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cp(0.5, 0, 1).cp(0.25, 1, 0);
        let opt = merge_rotations(&qc);
        assert_eq!(opt.gate_count(), 1);
        assert!(equivalent(&qc, &opt));
    }

    #[test]
    fn fuse_collapses_runs() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).t(0).h(0).s(0).h(0);
        let fused = fuse_single_qubit_runs(&qc, false);
        assert_eq!(fused.gate_count(), 1);
        assert!(equivalent(&qc, &fused));
    }

    #[test]
    fn fuse_native_emits_only_native() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).t(0).sdg(0);
        let fused = fuse_single_qubit_runs(&qc, true);
        for op in fused.instructions() {
            if let Op::Gate { gate, .. } = op {
                assert!(crate::basis::is_native(*gate));
            }
        }
        assert!(equivalent(&qc, &fused));
    }

    #[test]
    fn fuse_respects_two_qubit_boundaries() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).h(0);
        let fused = fuse_single_qubit_runs(&qc, false);
        assert_eq!(fused.gate_count(), 3);
        assert!(equivalent(&qc, &fused));
    }

    #[test]
    fn level3_shrinks_redundant_circuit() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0)
            .h(0)
            .t(1)
            .tdg(1)
            .cx(0, 1)
            .cx(0, 1)
            .rz(0.4, 0)
            .rz(-0.4, 0)
            .h(1)
            .s(1)
            .sdg(1)
            .h(1)
            .measure_all();
        let opt = optimize(&qc, Level::Level3, false);
        assert_eq!(opt.gate_count(), 0, "{opt}");
    }

    #[test]
    fn level0_is_identity_transform() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).h(0);
        assert_eq!(optimize(&qc, Level::Level0, false), qc);
    }

    #[test]
    fn optimization_preserves_semantics_on_random_circuit() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0)
            .cx(0, 1)
            .t(1)
            .t(1)
            .h(2)
            .h(2)
            .cp(0.9, 1, 2)
            .rz(1.1, 0)
            .rz(0.2, 0)
            .cx(1, 2)
            .y(2)
            .measure_all();
        for level in [Level::Level1, Level::Level2, Level::Level3] {
            let opt = optimize(&qc, level, false);
            let a = Statevector::from_circuit(&qc)
                .unwrap()
                .measurement_distribution(&qc);
            let b = Statevector::from_circuit(&opt)
                .unwrap()
                .measurement_distribution(&opt);
            assert!(a.tv_distance(&b) < 1e-9, "level {level:?} broke circuit");
            assert!(opt.gate_count() <= qc.gate_count());
        }
    }
}
