//! Transpilation: mapping logical circuits onto physical devices.
//!
//! The QuFI paper transpiles every benchmark with Qiskit's
//! `optimization_level=3` "in order to have the most dense layout and to
//! reduce as much as possible the use of SWAP gates, which could change the
//! ordering of qubits", and it "keeps track of the logical and physical
//! qubits throughout the transpiling process, and tags the qubits that are
//! neighbors after the transpiling process" (§IV-C). This crate implements
//! that pipeline:
//!
//! 1. **decompose** — rewrite gates outside the routable set (Toffoli).
//! 2. **layout** ([`layout`]) — choose an initial logical→physical map;
//!    level 3 uses a dense connected-subgraph search.
//! 3. **routing** ([`routing`]) — insert SWAPs so every 2-qubit gate acts on
//!    coupled physical qubits, tracking the evolving layout.
//! 4. **basis translation** ([`basis`]) — rewrite to the IBM native set
//!    `{rz, sx, x, cx}` via ZYZ decomposition.
//! 5. **optimization** ([`optimize`]) — cancel inverse pairs, merge
//!    rotations, fuse single-qubit runs.
//!
//! The [`Transpiler`] entry point runs the pipeline at a chosen
//! [`OptimizationLevel`] and returns a [`TranspileResult`] that exposes the
//! final logical→physical map and the physical-neighbour query QuFI's
//! double-fault injection needs.
//!
//! # Example
//!
//! ```
//! use qufi_sim::QuantumCircuit;
//! use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};
//!
//! let mut qc = QuantumCircuit::new(3, 3);
//! qc.h(0).cx(0, 2).measure_all(); // 0 and 2 are not coupled on a line
//! let line = CouplingMap::line(3);
//! let result = Transpiler::new(line, OptimizationLevel::Level3).run(&qc).unwrap();
//! // The routed circuit is semantically equivalent and uses only coupled pairs.
//! assert!(result.circuit().gate_count() > 0);
//! ```

pub mod basis;
pub mod error;
pub mod layout;
pub mod optimize;
pub mod routing;
pub mod topology;
pub mod transpiler;

pub use error::TranspileError;
pub use layout::Layout;
pub use routing::RoutingStrategy;
pub use topology::CouplingMap;
pub use transpiler::{OptimizationLevel, TranspileResult, Transpiler};
