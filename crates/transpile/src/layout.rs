//! Initial layout selection: logical → physical qubit assignment.
//!
//! Level-3 transpilation uses a **dense layout**: among connected physical
//! subgraphs of the right size, pick the one with the most internal edges
//! (ties broken by total calibration-agnostic degree), which minimizes the
//! routing SWAPs — the paper's stated reason for using `optimization_level=3`.

use crate::topology::CouplingMap;

/// A bijective map from logical qubits to physical qubits.
///
/// # Example
///
/// ```
/// use qufi_transpile::{CouplingMap, Layout};
///
/// let cm = CouplingMap::ibm_h7();
/// let layout = Layout::dense(&cm, 3);
/// // A 3-qubit dense layout on the H topology centers on qubit 1 or 5.
/// let physs: Vec<usize> = (0..3).map(|l| layout.physical(l)).collect();
/// assert!(physs.contains(&1) || physs.contains(&5));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layout {
    /// `phys[l]` = physical qubit hosting logical qubit `l`.
    phys: Vec<usize>,
    /// `logical[p]` = logical qubit hosted on physical `p`, if any.
    logical: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from an explicit logical→physical vector.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not injective or exceeds `num_physical`.
    pub fn from_mapping(phys: Vec<usize>, num_physical: usize) -> Self {
        let mut logical = vec![None; num_physical];
        for (l, &p) in phys.iter().enumerate() {
            assert!(p < num_physical, "physical qubit {p} out of range");
            assert!(logical[p].is_none(), "physical qubit {p} assigned twice");
            logical[p] = Some(l);
        }
        Layout { phys, logical }
    }

    /// The identity layout: logical `i` on physical `i`.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(num_logical <= num_physical, "not enough physical qubits");
        Layout::from_mapping((0..num_logical).collect(), num_physical)
    }

    /// Dense layout: the connected subgraph of `size` physical qubits with
    /// the most internal couplings, grown greedily from every seed qubit.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer than `size` qubits or no connected
    /// subgraph of that size exists.
    pub fn dense(cm: &CouplingMap, size: usize) -> Self {
        assert!(size <= cm.num_qubits(), "not enough physical qubits");
        if size == 0 {
            return Layout::from_mapping(vec![], cm.num_qubits());
        }
        let mut best: Option<(usize, Vec<usize>)> = None; // (internal edges, members)
        for seed in 0..cm.num_qubits() {
            if let Some(members) = grow_subgraph(cm, seed, size) {
                let score = internal_edges(cm, &members);
                let better = match &best {
                    None => true,
                    Some((s, _)) => score > *s,
                };
                if better {
                    best = Some((score, members));
                }
            }
        }
        let (_, members) = best.expect("no connected subgraph of requested size");
        // Assign logical qubits to members ordered by descending internal
        // degree so the busiest logical qubits (usually low indices) sit on
        // well-connected physical qubits.
        let mut ordered = members.clone();
        ordered.sort_by_key(|&p| {
            let deg = cm
                .neighbors(p)
                .iter()
                .filter(|&&x| members.contains(&x))
                .count();
            (std::cmp::Reverse(deg), p)
        });
        Layout::from_mapping(ordered, cm.num_qubits())
    }

    /// Number of logical qubits.
    #[inline]
    pub fn num_logical(&self) -> usize {
        self.phys.len()
    }

    /// Physical qubit hosting logical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is unmapped.
    #[inline]
    pub fn physical(&self, l: usize) -> usize {
        self.phys[l]
    }

    /// Logical qubit on physical `p`, if any.
    #[inline]
    pub fn logical_on(&self, p: usize) -> Option<usize> {
        self.logical.get(p).copied().flatten()
    }

    /// The full logical→physical vector.
    pub fn as_mapping(&self) -> &[usize] {
        &self.phys
    }

    /// Exchanges the contents of two *physical* qubits (the routing update
    /// after inserting a SWAP).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.logical[a];
        let lb = self.logical[b];
        self.logical[a] = lb;
        self.logical[b] = la;
        if let Some(l) = la {
            self.phys[l] = b;
        }
        if let Some(l) = lb {
            self.phys[l] = a;
        }
    }
}

/// Greedily grows a connected set of `size` qubits from `seed`, preferring
/// candidates with the most edges into the current set.
fn grow_subgraph(cm: &CouplingMap, seed: usize, size: usize) -> Option<Vec<usize>> {
    let mut members = vec![seed];
    while members.len() < size {
        let mut best: Option<(usize, usize)> = None; // (edges into set, candidate)
        for &m in &members {
            for &cand in cm.neighbors(m) {
                if members.contains(&cand) {
                    continue;
                }
                let score = cm
                    .neighbors(cand)
                    .iter()
                    .filter(|&&x| members.contains(&x))
                    .count();
                let better = match best {
                    None => true,
                    Some((s, c)) => score > s || (score == s && cand < c),
                };
                if better {
                    best = Some((score, cand));
                }
            }
        }
        members.push(best?.1);
    }
    members.sort_unstable();
    Some(members)
}

fn internal_edges(cm: &CouplingMap, members: &[usize]) -> usize {
    cm.edges()
        .iter()
        .filter(|&&(a, b)| members.contains(&a) && members.contains(&b))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5);
        for i in 0..3 {
            assert_eq!(l.physical(i), i);
            assert_eq!(l.logical_on(i), Some(i));
        }
        assert_eq!(l.logical_on(4), None);
    }

    #[test]
    fn dense_layout_prefers_hub_on_h7() {
        let cm = CouplingMap::ibm_h7();
        // 3 qubits: the best subgraphs are {0,1,2}/{0,1,3}/{1,2,3} (2 edges)
        // or around qubit 5. The hub (degree-3 qubit 1 or 5) must be in it,
        // and logical 0 should sit on the hub (highest internal degree).
        let l = Layout::dense(&cm, 3);
        let hub = l.physical(0);
        assert!(hub == 1 || hub == 5, "logical 0 on {hub}");
    }

    #[test]
    fn dense_layout_is_connected() {
        for size in 2..=7 {
            let cm = CouplingMap::ibm_h7();
            let l = Layout::dense(&cm, size);
            let members: Vec<usize> = (0..size).map(|q| l.physical(q)).collect();
            // Every member reaches member 0 within the subgraph via BFS on
            // the full graph restricted to members.
            let mut seen = vec![members[0]];
            let mut frontier = vec![members[0]];
            while let Some(u) = frontier.pop() {
                for &v in cm.neighbors(u) {
                    if members.contains(&v) && !seen.contains(&v) {
                        seen.push(v);
                        frontier.push(v);
                    }
                }
            }
            assert_eq!(seen.len(), size, "size {size} subgraph disconnected");
        }
    }

    #[test]
    fn dense_beats_trivial_on_edge_count() {
        // On the H topology a trivial 4-qubit layout {0,1,2,3} has 3 internal
        // edges; dense should find at least as many.
        let cm = CouplingMap::ibm_h7();
        let dense = Layout::dense(&cm, 4);
        let members: Vec<usize> = (0..4).map(|q| dense.physical(q)).collect();
        assert!(internal_edges(&cm, &members) >= 3);
    }

    #[test]
    fn swap_physical_updates_both_views() {
        let mut l = Layout::trivial(2, 3);
        l.swap_physical(1, 2);
        assert_eq!(l.physical(1), 2);
        assert_eq!(l.logical_on(2), Some(1));
        assert_eq!(l.logical_on(1), None);
        // Swapping two empty qubits is a no-op.
        let mut l2 = Layout::trivial(1, 3);
        l2.swap_physical(1, 2);
        assert_eq!(l2.physical(0), 0);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn non_injective_mapping_rejected() {
        let _ = Layout::from_mapping(vec![0, 0], 2);
    }
}
